"""Synthesis introspection: the Table 2 view of a conversion.

Table 2 of the paper lists, for the COO→MCOO running example, the unknown
uninterpreted functions across the top and under each the constraints from
the composed relation that mention it.  :func:`constraints_per_unknown_uf`
computes exactly that for any source/destination pair, and
:func:`render_table2` prints it in a Table-2-like layout.
"""

from __future__ import annotations

from repro.formats.descriptor import FormatDescriptor

from .compose import _disambiguate, _prune_range_guards
from .conversion import PERMUTATION


def constraints_per_unknown_uf(
    src: FormatDescriptor, dst: FormatDescriptor
) -> dict[str, list[str]]:
    """Map each unknown UF of the conversion to its governing constraints.

    Unknown UFs are the destination's index arrays (after collision
    renaming) plus the permutation ``P`` when the destination carries a
    reordering quantifier; ``P``'s entry lists the ordering constraint,
    mirroring the last column of Table 2.
    """
    dst_r, _ = _disambiguate(dst, src)
    composed = dst_r.sparse_to_dense.inverse().compose(src.sparse_to_dense)
    conj = _prune_range_guards(composed.single_conjunction, [src, dst_r])

    table: dict[str, list[str]] = {}
    for uf in sorted(dst_r.index_ufs()):
        table[uf] = [str(c) for c in conj.constraints if uf in c.uf_names()]
        domain = dst_r.uf_domains.get(uf)
        if domain is not None:
            table[uf].append(f"domain({uf}) = {domain}")
        quantifier = dst_r.monotonic.get(uf)
        if quantifier is not None:
            table[uf].append(str(quantifier))

    if dst_r.ordering is not None:
        coord_ufs = [
            dst_r.coord_ufs.get(v, f"coord_{v}")
            for v in dst_r.ordering.dense_vars
        ]
        pos = dst_r.position_var
        table[PERMUTATION] = [
            f"{PERMUTATION}({', '.join(dst_r.dense_vars)}) = "
            f"[{', '.join(dst_r.sparse_vars)}]",
            dst_r.ordering.display(pos, coord_ufs),
        ]
    return table


def render_table2(src: FormatDescriptor, dst: FormatDescriptor) -> str:
    """Render the per-UF constraint table as aligned text columns."""
    table = constraints_per_unknown_uf(src, dst)
    lines = [f"Unknown UFs for {src.name} -> {dst.name}:"]
    for uf, constraints in table.items():
        lines.append(f"  {uf}:")
        for c in constraints:
            lines.append(f"    {c}")
    return "\n".join(lines)
