"""Build stage (the paper's steps 1, 4 and 5): emit the SPF computation.

:func:`build_stage` turns a :class:`~repro.pipeline.artifacts.CaseMatch`
into the raw (unoptimized) :class:`~repro.spf.Computation`: allocations,
permutation population (via :mod:`.permutation`), UF population
statements, derived size symbols, universal-quantifier enforcement, the
destination data allocation and the final copy — each tagged with its
phase, then ordered by phase.
"""

from __future__ import annotations

from repro.ir import (
    Conjunction,
    Expr,
    Geq,
    IntSet,
    Var,
    equals,
)
from repro.pipeline.artifacts import BuiltComputation, CaseMatch, ComposedRelation
from repro.spf import Computation, Stmt, SymbolTable
from repro.spf.codegen.printers import print_expr

from .compose import _domain_size_expr
from .sizing import derive_size_symbols, dest_data_size
from .conversion import (
    DEST_DATA,
    PERMUTATION,
    PH_ALLOC,
    PH_COPY,
    PH_DSTALLOC,
    PH_DYNALLOC,
    PH_ENFORCE,
    PH_PERMSYM,
    PH_POP,
    PH_SIZESYM,
    SOURCE_DATA,
    SynthesisError,
)
from .permutation import (
    alias_prefix_ufs,
    bucket_permutation_spec,
    emit_permutation,
    strengthen_reductions,
)


def build_stage(
    composed: ComposedRelation,
    match: CaseMatch,
    *,
    optimize: bool,
    fn_name: str,
    notes: list[str],
) -> BuiltComputation:
    """Steps 1+4+5: emit every statement of the conversion inspector."""
    src = composed.pair.src
    dst = composed.pair.dst
    dst_r = composed.dst_renamed
    uf_map = composed.uf_map
    conj = composed.conjunction

    src_space = match.src_space
    dst_vars = match.dst_vars
    dense_exprs = match.dense_exprs
    values = match.values
    kd_expr = match.kd_expr
    search_vars = match.search_vars
    position_var = match.position_var
    use_perm_lookup = match.use_perm_lookup
    plans = match.plans
    plan_by_uf = match.plan_by_uf

    symtab = SymbolTable(
        arrays=(
            set(src.index_ufs())
            | set(dst_r.index_ufs())
            | {SOURCE_DATA, DEST_DATA}
        ),
        functions={"MORTON", "MORTON2", "MORTON3", "BSEARCH"},
        objects={PERMUTATION},
    )
    def pexpr(e):
        return print_expr(e, symtab, "py")

    params = sorted(src.index_ufs()) + sorted(src.size_symbols()) + [SOURCE_DATA]
    param_set = set(params)
    comp = Computation(fn_name)
    empty_space = IntSet(())

    # Derived size symbols are decided first: whether any symbol needs
    # ``len(P)`` controls how the permutation may be implemented.
    insert_ufs = [p.uf for p in plans if p.kind == "insert"]
    sym_sources = derive_size_symbols(src, dst_r, conj, match, insert_ufs)

    # --- permutation population -------------------------------------
    bucket_spec = (
        bucket_permutation_spec(src, dst_r)
        if match.need_perm_structure
        else None
    )
    inline_bucket = (
        bucket_spec is not None
        and optimize
        and all(origin != PERMUTATION for origin in sym_sources.values())
    )
    pos_stateful = emit_permutation(
        comp,
        src,
        dst_r,
        match,
        bucket_spec=bucket_spec,
        inline_bucket=inline_bucket,
        pexpr=pexpr,
        notes=notes,
    )
    pos_definition = match.pos_definition

    for sym, origin in sym_sources.items():
        if origin == PERMUTATION:
            comp.new_stmt(
                f"{sym} = len({PERMUTATION})",
                empty_space,
                reads=[PERMUTATION],
                writes=[sym],
                phase=PH_PERMSYM,
            )
            notes.append(f"{sym} = len(P) (derived from the permutation)")

    strengthen_reductions(
        src, match, bucket_spec=bucket_spec, optimize=optimize, notes=notes
    )
    aliased_ufs = alias_prefix_ufs(
        comp,
        src,
        match,
        bucket_spec=bucket_spec,
        pos_stateful=pos_stateful,
        notes=notes,
    )

    # --- allocations ---------------------------------------------------
    def alloc_phase_for(size_expr: Expr) -> int:
        needed = size_expr.sym_names() - param_set
        if not needed:
            return PH_ALLOC
        if needed <= {s for s, o in sym_sources.items() if o == PERMUTATION}:
            return PH_DYNALLOC
        return PH_DSTALLOC

    array_plans = [p for p in plans if p.kind in ("scatter", "min", "max")]
    for plan in array_plans:
        domain = dst_r.uf_domains.get(plan.uf)
        if domain is None:
            raise SynthesisError(f"UF {plan.uf!r} has no declared domain")
        size = _domain_size_expr(domain)
        init = "0" if plan.kind in ("scatter", "max") else pexpr(
            _domain_size_expr(dst_r.uf_ranges[plan.uf])
            if plan.uf in dst_r.uf_ranges
            else Expr(0)
        )
        comp.new_stmt(
            f"{plan.uf} = [{init}] * ({pexpr(size)})",
            empty_space,
            writes=[plan.uf],
            phase=alloc_phase_for(size),
        )
    for uf in insert_ufs:
        comp.new_stmt(
            f"{uf} = OrderedSet()",
            empty_space,
            writes=[uf],
            phase=PH_ALLOC,
        )

    # --- population ------------------------------------------------------
    def extended_space(extra_pos: bool) -> IntSet:
        """Source space, optionally extended with the bound position var."""
        if not extra_pos or position_var is None:
            return src_space
        assert pos_definition is not None
        constraint = equals(Var(position_var), pos_definition)
        return IntSet(
            src_space.tuple_vars + (position_var,),
            [src_space.single_conjunction.add(constraint)],
        )

    population_reads = sorted(src.index_ufs()) + (
        [PERMUTATION] if (use_perm_lookup and not pos_stateful) else []
    )
    if pos_stateful:
        assert position_var is not None and bucket_spec is not None
        bexpr = pexpr(dense_exprs[bucket_spec[0]])
        comp.new_stmt(
            f"{position_var} = P_fill[{bexpr}]\n"
            f"P_fill[{bexpr}] = {position_var} + 1",
            src_space,
            reads=sorted(src.index_ufs()) + ["P_fill"],
            writes=["__pos__", "P_fill"],
            phase=PH_POP,
        )
        population_reads = population_reads + ["__pos__"]

    # Copy-propagate a cheap position definition (no permutation lookup)
    # directly into statement expressions; expensive definitions stay as a
    # once-per-iteration LetEq via the extended iteration space.
    propagate_pos = (
        position_var is not None
        and pos_definition is not None
        and not pos_definition.uf_calls()
    )

    def finalize_expr(expr: Expr) -> Expr:
        if propagate_pos and position_var in expr.var_names():
            assert pos_definition is not None and position_var is not None
            return expr.substitute_vars({position_var: pos_definition})
        return expr

    for plan in plans:
        uses_pos = position_var is not None and any(
            position_var in e.var_names()
            for e in list(plan.args) + [plan.value]
        )
        space = extended_space(
            uses_pos and not propagate_pos and not pos_stateful
        )
        args = [finalize_expr(a) for a in plan.args]
        value = finalize_expr(plan.value)
        if plan.kind == "insert":
            text = f"{plan.uf}.insert({pexpr(value)})"
        elif plan.kind == "scatter":
            index = ", ".join(pexpr(a) for a in args)
            text = f"{plan.uf}[{index}] = {pexpr(value)}"
        else:
            fn = "max" if plan.kind == "max" else "min"
            index = ", ".join(pexpr(a) for a in args)
            text = (
                f"{plan.uf}[{index}] = {fn}({plan.uf}[{index}], "
                f"{pexpr(value)})"
            )
        comp.new_stmt(
            text,
            space,
            reads=population_reads,
            writes=[plan.uf],
            phase=PH_POP,
        )

    # --- size symbols from insert structures ----------------------------
    for sym, origin in sym_sources.items():
        if origin != PERMUTATION:
            comp.new_stmt(
                f"{sym} = len({origin})",
                empty_space,
                reads=[origin],
                writes=[sym],
                phase=PH_SIZESYM,
            )
            notes.append(f"{sym} = len({origin}) (insert-populated UF size)")

    # --- Step 4: enforce universal quantifiers --------------------------
    enforced_ufs: set[str] = set()
    for uf, quantifier in dst_r.monotonic.items():
        if uf in aliased_ufs:
            # Prefix sums are non-decreasing by construction.
            enforced_ufs.add(uf)
            continue
        plan = plan_by_uf.get(uf)
        if plan is None:
            continue
        if plan.kind == "insert":
            enforced_ufs.add(uf)  # the OrderedSet enforces on insert
            if optimize:
                # Materialize to a plain array before the copy consumes it:
                # guards and binary searches then index without structure
                # call overhead.
                comp.new_stmt(
                    f"{uf} = {uf}.to_list()",
                    empty_space,
                    reads=[uf],
                    writes=[uf],
                    phase=PH_ENFORCE,
                )
            notes.append(
                f"{uf}: strict monotonic quantifier enforced by the "
                "ordered insert structure"
            )
            continue
        if quantifier.strict:
            raise SynthesisError(
                f"strictly monotonic UF {uf!r} populated by "
                f"{plan.kind!r} cannot be enforced"
            )
        domain = dst_r.uf_domains[uf]
        dvar = domain.tuple_vars[0]
        upper = domain.single_conjunction.upper_bounds(dvar)[0]
        enforce_space = IntSet(
            (dvar,),
            [
                Conjunction(
                    [Geq(Var(dvar) - 1), Geq(upper - Var(dvar))]
                )
            ],
        )
        comp.new_stmt(
            f"{uf}[{dvar}] = max({uf}[{dvar}], {uf}[{dvar} - 1])",
            enforce_space,
            reads=[uf],
            writes=[uf],
            phase=PH_ENFORCE,
        )
        enforced_ufs.add(uf)
        notes.append(
            f"{uf}: monotonic quantifier enforced by a forward max pass"
        )

    # --- destination data allocation ------------------------------------
    dst_size = dest_data_size(src, dst_r, conj, match, sym_sources)
    comp.new_stmt(
        f"{DEST_DATA} = [0.0] * ({pexpr(dst_size)})",
        empty_space,
        writes=[DEST_DATA],
        phase=alloc_phase_for(dst_size),
    )

    # --- Step 5: the copy -------------------------------------------------
    copy_vars = list(src_space.tuple_vars)
    copy_constraints = list(src_space.single_conjunction.constraints)
    needed_dst_vars: list[str] = []

    def need_var(v: str):
        if v in needed_dst_vars or v in copy_vars:
            return
        needed_dst_vars.append(v)

    copy_kd_expr = finalize_expr(kd_expr)
    for v in copy_kd_expr.var_names():
        if v in dst_vars:
            if pos_stateful and v == position_var:
                continue  # bound by the stateful position statement
            need_var(v)
    # Pull in transitive dependencies of resolvable vars.
    frontier = list(needed_dst_vars)
    while frontier:
        v = frontier.pop()
        value = values.get(v)
        if value is None:
            continue
        for dep in value.var_names():
            if dep in dst_vars and dep not in needed_dst_vars:
                needed_dst_vars.append(dep)
                frontier.append(dep)

    resolvable = [v for v in needed_dst_vars if values[v] is not None]
    # Bind the position first so fusion can share its (possibly expensive)
    # permutation lookup with the population statements.
    resolvable.sort(key=lambda v: 0 if v == position_var else 1)
    searches = [v for v in needed_dst_vars if values[v] is None]
    for v in resolvable:
        copy_vars.append(v)
        value = pos_definition if v == position_var else values[v]
        assert value is not None
        copy_constraints.append(equals(Var(v), value))
    for v in searches:
        if v not in search_vars:
            raise SynthesisError(
                f"variable {v!r} in the data layout is neither resolvable "
                "nor searchable"
            )
        copy_vars.append(v)
        for c in conj.constraints:
            if not c.mentions_var(v):
                continue
            # Rewrite the constraint over source terms where possible.
            rewritten = c
            for name in c.var_names():
                if name in values and values[name] is not None and name != v:
                    rewritten = rewritten.substitute_vars(
                        {name: values[name]}  # type: ignore[dict-item]
                    )
            if rewritten.var_names() <= set(copy_vars):
                copy_constraints.append(rewritten)

    copy_space = IntSet(tuple(copy_vars), [Conjunction(copy_constraints)])
    copy_reads = [SOURCE_DATA] + sorted(
        {
            call.name
            for c in copy_space.single_conjunction
            for call in c.uf_calls()
        }
        | ({PERMUTATION} if (use_perm_lookup and not pos_stateful) else set())
        | ({"__pos__"} if pos_stateful else set())
    )
    reads_enforced = any(
        uf in enforced_ufs or uf in insert_ufs for uf in copy_reads
    )
    copy_phase = PH_COPY if (reads_enforced or searches) else PH_POP
    if copy_phase == PH_POP:
        notes.append("copy fused candidate: same phase as UF population")
    else:
        notes.append(
            "copy must follow quantifier enforcement (index property "
            "blocks fusion with population)"
        )
    comp.new_stmt(
        f"{DEST_DATA}[{pexpr(copy_kd_expr)}] = "
        f"{SOURCE_DATA}[{pexpr(match.src_data_expr)}]",
        copy_space,
        reads=copy_reads,
        writes=[DEST_DATA],
        phase=copy_phase,
    )

    # Order statements by phase (stable), then re-number default schedules.
    ordered = sorted(comp.stmts, key=lambda s: s.phase)
    comp.replace_stmts([])
    comp._counter = 0
    for stmt in ordered:
        comp.add_stmt(
            Stmt(
                stmt.text,
                stmt.space,
                None,
                stmt.reads,
                stmt.writes,
                "",
                stmt.phase,
            )
        )

    returns = tuple(
        sorted(set(uf_map[u] for u in dst.index_ufs()))
        + sorted(sym_sources)
        + [DEST_DATA]
    )

    return BuiltComputation(
        comp=comp,
        params=tuple(params),
        returns=returns,
        symtab=symtab,
    )
