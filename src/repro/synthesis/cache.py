"""Synthesis memo and persistent inspector cache.

Three layers make repeated synthesis cheap:

1. the hash-consed IR with memoized set/relation algebra (:mod:`repro.ir`),
2. a process-wide memo of :func:`synthesize` results keyed on format
   fingerprints (this module),
3. an on-disk cache of generated inspector source under
   ``$REPRO_CACHE_DIR`` (default ``~/.cache/repro-spf``), keyed on the
   (source format, destination format, options, backend) tuple and
   partitioned by a hash of the package's own source code so a stale cache
   can never serve code from an older version of the synthesizer.

Disk entries are JSON payloads written atomically (tempfile +
``os.replace``), so concurrent processes warming the same cache directory
are safe.  A conversion loaded from disk carries the generated source,
signature and metadata but not the in-memory SPF ``computation`` /
``symtab`` (those are synthesis intermediates; callers that need them —
like tandem synthesis — use :func:`repro.synthesis.synthesize` directly).

Disk entries are sharded into 256 two-hex-digit subdirectories per
version partition (``<version>/<xx>/<entry>.json``) so a hot cache never
concentrates thousands of files in one directory, and the store is
optionally size-bounded: set a byte or entry budget and the least
recently *used* entries (hits refresh an entry's mtime) are evicted
after each write.

Environment knobs:

* ``REPRO_CACHE_DIR`` — cache location (default ``~/.cache/repro-spf``),
* ``REPRO_CACHE_DISABLE=1`` — skip the disk layer entirely,
* ``REPRO_CACHE_MAX_BYTES`` — LRU byte budget per version partition
  (unset or empty = unbounded),
* ``REPRO_CACHE_MAX_ENTRIES`` — LRU entry-count budget per version
  partition (unset or empty = unbounded),
* ``REPRO_CACHE_STATS_FILE=path`` — dump hit/miss counters as JSON at
  process exit (used by CI to assert cache effectiveness).
"""

from __future__ import annotations

import atexit
import hashlib
import json
import os
import re
import tempfile
import threading
from pathlib import Path
from typing import Sequence

import repro.obs as obs
from repro._prof import PROF
from repro.codeversion import code_version_hash
from repro.formats.descriptor import FormatDescriptor

from .conversion import SynthesisError, SynthesizedConversion
from .engine import synthesize as _raw_synthesize

#: Serialized SynthesizedConversion fields round-tripped through disk.
_PAYLOAD_FIELDS = (
    "name",
    "src_format",
    "dst_format",
    "params",
    "returns",
    "source",
    "scalar_source",
    "uf_output_map",
    "notes",
    "backend",
    "vector_stats",
)

#: Bumped to 2 when the cache key grew the pass-pipeline fingerprint.
_PAYLOAD_VERSION = 2

#: Attribute the computed fingerprint is memoized under, directly on the
#: descriptor object.  A module-level ``id()``-keyed table here used to
#: pin a strong reference to every descriptor ever fingerprinted — an
#: unbounded leak in long-lived processes handling parameterized
#: ``BCSR{k}`` factories; the attribute dies with its descriptor.
_FP_ATTR = "_repro_fingerprint"

#: Process-wide memo of synthesis results (including failures).
_MEMO: dict[tuple, SynthesizedConversion | SynthesisError] = {}

#: Per-key in-flight synthesis locks: N threads missing on the same key
#: serialize here, so exactly one runs synthesis and the rest are served
#: its memoized result (``cache.coalesced``).  The daemon's request
#: coalescing is this same primitive reached through ``convert()``.
_INFLIGHT_GUARD = threading.Lock()
_INFLIGHT: dict[tuple, threading.Lock] = {}


def _inflight_lock(key: tuple) -> threading.Lock:
    with _INFLIGHT_GUARD:
        lock = _INFLIGHT.get(key)
        if lock is None:
            lock = _INFLIGHT[key] = threading.Lock()
        return lock


def format_fingerprint(fmt: FormatDescriptor) -> str:
    """A stable content hash of a format descriptor.

    Serializes the descriptor through the JSON schema (textual relation
    notation), so two descriptor objects with identical semantics share a
    fingerprint even across processes.  Memoized on the descriptor object
    itself, so the cache's lifetime is exactly the descriptor's.
    """
    cached = fmt.__dict__.get(_FP_ATTR)
    if cached is not None:
        return cached
    from repro.io.descriptor_json import descriptor_to_dict

    blob = json.dumps(descriptor_to_dict(fmt), sort_keys=True)
    fp = hashlib.sha256(blob.encode()).hexdigest()[:16]
    setattr(fmt, _FP_ATTR, fp)
    return fp


# ----------------------------------------------------------------------
# Disk layer
# ----------------------------------------------------------------------
def cache_root() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-spf"


#: Version partitions are 16-hex-digit directories directly under the
#: root; everything else under the root (``costs/``, future siblings) is
#: NOT inspector-cache data and must survive ``clear_disk_cache``.
_PARTITION_RE = re.compile(r"[0-9a-f]{16}")


def cache_dir() -> Path:
    """Version-partitioned cache directory for the current source tree."""
    return cache_root() / code_version_hash()[:16]


def version_partitions(root: Path | None = None) -> list[Path]:
    """The inspector-entry version partitions under the cache root.

    Only these hold cached inspectors; sibling directories (the learned
    cost store under ``costs/``, the compiled-artifact cache) are other
    subsystems' data.
    """
    root = cache_root() if root is None else root
    if not root.is_dir():
        return []
    return sorted(
        sub
        for sub in root.iterdir()
        if sub.is_dir() and _PARTITION_RE.fullmatch(sub.name)
    )


def disk_enabled() -> bool:
    return os.environ.get("REPRO_CACHE_DISABLE", "") not in (
        "1",
        "true",
        "on",
        "yes",
    )


def _budget_env(name: str) -> int | None:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        return None
    return value if value >= 0 else None


def cache_max_bytes() -> int | None:
    """Byte budget per version partition (``REPRO_CACHE_MAX_BYTES``)."""
    return _budget_env("REPRO_CACHE_MAX_BYTES")


def cache_max_entries() -> int | None:
    """Entry budget per version partition (``REPRO_CACHE_MAX_ENTRIES``)."""
    return _budget_env("REPRO_CACHE_MAX_ENTRIES")


def _entry_path(key: tuple) -> Path:
    src_fp, dst_fp, optimize, binary_search, pass_fp, backend, name = key
    flags = f"{int(optimize)}{int(binary_search)}"
    tail = hashlib.sha256(repr(key).encode()).hexdigest()[:12]
    # Two-hex-digit shard subdir: 256-way fan-out keeps any one directory
    # small however many pairs x configs a long-lived service accumulates.
    return (
        cache_dir()
        / tail[:2]
        / f"{src_fp}.{dst_fp}.{backend}.{flags}.{tail}.json"
    )


def _atomic_write_json(path: Path, payload: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(payload, fh)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _store_disk(
    key: tuple, conv: SynthesizedConversion | SynthesisError
) -> None:
    if isinstance(conv, SynthesisError):
        # Negative entries save warm processes from re-running the doomed
        # (and often slowest) synthesis attempts; they are just as safe as
        # positive ones — the key covers format content and code version.
        payload = {"synthesis_error": str(conv)}
        PROF.incr("cache.disk.negative_write")
    else:
        payload = {f: getattr(conv, f) for f in _PAYLOAD_FIELDS}
        payload["params"] = list(conv.params)
        payload["returns"] = list(conv.returns)
        # Payload-contract key: the memoized display C if this process
        # rendered it, else null — reading ``conv.c_source`` here would
        # defeat the lazy generation the field exists for.
        payload["c_source"] = conv._c_source
    payload["version"] = _PAYLOAD_VERSION
    payload["code_version"] = code_version_hash()
    try:
        _atomic_write_json(_entry_path(key), payload)
        PROF.incr("cache.disk.write")
    except OSError:
        PROF.incr("cache.disk.write_error")
        return
    enforce_budget()


def _partition_entries(partition: Path) -> list[tuple[Path, float, int]]:
    """(path, mtime, size) for every entry in one version partition."""
    entries = []
    for path in partition.rglob("*.json"):
        try:
            stat = path.stat()
        except OSError:
            continue
        entries.append((path, stat.st_mtime, stat.st_size))
    return entries


def enforce_budget(partition: Path | None = None) -> int:
    """Evict least-recently-used entries beyond the configured budget.

    Applies ``REPRO_CACHE_MAX_BYTES`` / ``REPRO_CACHE_MAX_ENTRIES`` to
    one version partition (the current one by default).  Recency is the
    entry file's mtime — refreshed on every disk hit — so eviction is
    LRU, not insertion-order.  Returns the number of files removed; a
    no-op (and no directory scan) when neither budget is set.
    """
    max_bytes = cache_max_bytes()
    max_count = cache_max_entries()
    if max_bytes is None and max_count is None:
        return 0
    partition = cache_dir() if partition is None else partition
    if not partition.is_dir():
        return 0
    entries = sorted(_partition_entries(partition), key=lambda e: e[1])
    total = sum(size for _, _, size in entries)
    count = len(entries)
    removed = 0
    for path, _, size in entries:
        over_bytes = max_bytes is not None and total > max_bytes
        over_count = max_count is not None and count > max_count
        if not (over_bytes or over_count):
            break
        try:
            path.unlink()
        except OSError:
            continue
        total -= size
        count -= 1
        removed += 1
    if removed:
        PROF.incr("cache.disk.evict", removed)
    return removed


def _load_disk(
    key: tuple,
) -> SynthesizedConversion | SynthesisError | None:
    path = _entry_path(key)
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except (OSError, ValueError):
        return None
    try:
        # LRU recency: a hit refreshes the mtime budget eviction sorts by.
        os.utime(path)
    except OSError:
        pass
    if payload.get("version") != _PAYLOAD_VERSION:
        return None
    if payload.get("code_version") != code_version_hash():
        return None  # belt and braces: the directory is already versioned
    if "synthesis_error" in payload:
        return SynthesisError(payload["synthesis_error"])
    return SynthesizedConversion(
        name=payload["name"],
        src_format=payload["src_format"],
        dst_format=payload["dst_format"],
        computation=None,
        params=tuple(payload["params"]),
        returns=tuple(payload["returns"]),
        source=payload["source"],
        _c_source=payload.get("c_source"),
        symtab=None,
        uf_output_map=dict(payload["uf_output_map"]),
        notes=list(payload["notes"]),
        backend=payload["backend"],
        scalar_source=payload["scalar_source"],
        vector_stats=payload["vector_stats"],
    )


# ----------------------------------------------------------------------
# The cached synthesis entry point
# ----------------------------------------------------------------------
def synthesize_cached(
    src: FormatDescriptor,
    dst: FormatDescriptor,
    *,
    optimize: bool = True,
    binary_search: bool = False,
    name: str | None = None,
    backend: str = "python",
    disabled_passes: tuple[str, ...] = (),
    use_disk: bool = True,
) -> SynthesizedConversion:
    """:func:`repro.synthesis.synthesize` behind the memo and disk cache.

    Results (including :class:`SynthesisError` failures) are memoized for
    the process; successful results are persisted to the disk cache so a
    later process skips synthesis entirely and only loads + execs source.

    The key covers the resolved pass pipeline (via
    :meth:`~repro.pipeline.PassManager.fingerprint`), so a conversion
    synthesized with ``--disable-pass fusion`` can never be served a
    cached inspector built with the full pipeline — and vice versa.
    """
    from repro.backends import get_backend
    from repro.pipeline import BINARY_SEARCH, PASSES

    backend_name = get_backend(backend).name
    pass_fp = PASSES.fingerprint(
        PASSES.config(
            optimize=optimize,
            requested=(BINARY_SEARCH,) if binary_search else (),
            disabled=tuple(disabled_passes),
        )
    )
    key = (
        format_fingerprint(src),
        format_fingerprint(dst),
        optimize,
        binary_search,
        pass_fp,
        backend_name,
        name,
    )
    with obs.span(
        "cache.lookup",
        category="cache",
        src=src.name,
        dst=dst.name,
        backend=backend_name,
    ) as span:
        cached = _MEMO.get(key)
        if cached is not None:
            PROF.incr("cache.memo.hit")
            span.set(outcome="memo_hit")
            if isinstance(cached, SynthesisError):
                raise cached
            return cached

        # Serialize misses per key: without this, N threads missing
        # simultaneously all ran synthesis and raced the disk write.  The
        # one lock holder synthesizes; everyone queued behind it lands on
        # the re-check below and is served the same result (the request
        # coalescing `repro serve` amortizes synthesis with).
        with _inflight_lock(key):
            cached = _MEMO.get(key)
            if cached is not None:
                PROF.incr("cache.memo.hit")
                PROF.incr("cache.coalesced")
                span.set(outcome="coalesced")
                if isinstance(cached, SynthesisError):
                    raise cached
                return cached

            if use_disk and disk_enabled():
                with PROF.timer("cache.disk.load"):
                    loaded = _load_disk(key)
                if loaded is not None:
                    PROF.incr("cache.disk.hit")
                    _MEMO[key] = loaded
                    if isinstance(loaded, SynthesisError):
                        PROF.incr("cache.disk.negative_hit")
                        span.set(outcome="disk_negative_hit")
                        raise loaded
                    span.set(outcome="disk_hit")
                    return loaded

            PROF.incr("cache.miss")
            span.set(outcome="miss")
            try:
                with PROF.timer("synthesis.total"):
                    conv = _raw_synthesize(
                        src,
                        dst,
                        optimize=optimize,
                        binary_search=binary_search,
                        name=name,
                        backend=backend_name,
                        disabled_passes=tuple(disabled_passes),
                    )
            except SynthesisError as err:
                _MEMO[key] = err
                if use_disk and disk_enabled():
                    _store_disk(key, err)
                raise
            _MEMO[key] = conv
            if use_disk and disk_enabled():
                _store_disk(key, conv)
            return conv


def clear_memo() -> None:
    """Drop the in-process synthesis memo (mainly for tests)."""
    _MEMO.clear()


def clear_disk_cache(*, all_versions: bool = False) -> int:
    """Delete cached inspector entries; returns the number removed.

    By default only the current code version's partition is cleared;
    ``all_versions=True`` removes every version partition under the root.
    Only inspector partitions (16-hex-digit directories) are touched:
    sibling data under the cache root — notably the learned cost store in
    ``costs/`` — is other subsystems' and survives a full clear.  (An
    unscoped ``rglob`` here used to wipe the cost store's JSON too.)
    """
    removed = 0
    roots = version_partitions() if all_versions else [cache_dir()]
    for root in roots:
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*.json")):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
    return removed


def cache_stats() -> dict:
    """Counters plus on-disk shape of the cache, for the CLI and CI."""
    snap = PROF.snapshot()
    counters = {
        k: v for k, v in snap["counters"].items() if k.startswith("cache.")
    }
    root = cache_root()
    current = cache_dir()
    current_entries = (
        _partition_entries(current) if current.is_dir() else []
    )
    stale = 0
    for sub in version_partitions(root):
        if sub != current:
            stale += sum(1 for _ in sub.rglob("*.json"))
    return {
        "root": str(root),
        "code_version": code_version_hash()[:16],
        "disk_enabled": disk_enabled(),
        "entries": len(current_entries),
        "bytes": sum(size for _, _, size in current_entries),
        "max_bytes": cache_max_bytes(),
        "max_entries": cache_max_entries(),
        "stale_entries": stale,
        "memo_entries": len(_MEMO),
        "counters": counters,
    }


# ----------------------------------------------------------------------
# Warming
# ----------------------------------------------------------------------
def _planner_pairs(backend: str) -> list[tuple[str, str, str]]:
    from repro.planner import PLANNABLE_2D, PLANNABLE_3D

    pairs = []
    for group in (PLANNABLE_2D, PLANNABLE_3D):
        for a in group:
            for b in group:
                if a != b:
                    pairs.append((a, b, backend))
    return pairs


def _warm_pair(job: tuple[str, str, str]) -> tuple[str, str, bool]:
    """Synthesize one pair into the shared disk cache (worker-safe)."""
    from repro.formats import get_format

    src, dst, backend = job
    try:
        synthesize_cached(get_format(src), get_format(dst), backend=backend)
        return (src, dst, True)
    except SynthesisError:
        return (src, dst, False)


def warm(
    *,
    backend: str = "python",
    jobs: int = 1,
    pairs: Sequence[tuple[str, str]] | None = None,
) -> dict:
    """Pre-synthesize the planner's conversion graph into the disk cache.

    ``jobs > 1`` fans the pairs out over worker processes; atomic writes
    make concurrent population of one cache directory safe.  Returns a
    ``{"synthesized": n, "unsynthesizable": m}`` summary.
    """
    if pairs is None:
        jobs_list = _planner_pairs(backend)
    else:
        jobs_list = [(a, b, backend) for a, b in pairs]
    ok = bad = 0
    if jobs > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=jobs) as pool:
            for _, _, success in pool.map(_warm_pair, jobs_list):
                ok += success
                bad += not success
    else:
        for job in jobs_list:
            _, _, success = _warm_pair(job)
            ok += success
            bad += not success
    return {"synthesized": ok, "unsynthesizable": bad}


# ----------------------------------------------------------------------
# CI support: dump the unified telemetry snapshot at exit when asked to.
# ----------------------------------------------------------------------
def stats_file_payload() -> dict:
    """What ``REPRO_CACHE_STATS_FILE`` receives: the unified snapshot.

    ``repro stats`` and ``repro cache stats`` both read through
    :func:`repro.obs.unified_snapshot`, so the file reports the same
    numbers as the CLI.  The top-level ``counters`` mirror of the cache
    counters is kept for existing consumers (the CI cache job asserts on
    it).
    """
    snapshot = obs.unified_snapshot()
    snapshot["counters"] = dict(snapshot["cache"]["counters"])
    return snapshot


_stats_file = os.environ.get("REPRO_CACHE_STATS_FILE")
if _stats_file:  # pragma: no cover - exercised by the CI cache job

    @atexit.register
    def _dump_stats(path=_stats_file):
        try:
            _atomic_write_json(Path(path), stats_file_payload())
        except OSError:
            pass
