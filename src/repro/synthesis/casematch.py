"""Case-match stage (the paper's step 3).

:func:`case_match_stage` resolves every destination tuple variable over
source information, classifies the remaining unknowns into the position
variable versus search variables, decides how positions are produced
(step 1's permutation insertion), and plans one population statement per
unknown UF via the case analysis in :mod:`repro.synthesis.cases`.
"""

from __future__ import annotations

from typing import Optional

from repro.ir import Expr, UFCall, Var
from repro.pipeline.artifacts import CaseMatch, ComposedRelation

from .cases import (
    Resolver,
    UFStatementPlan,
    classify,
    normalize_for_uf,
    select_plans,
)
from .compose import (
    _dense_source_exprs,
    _is_bare_var,
    _ordering_equal,
    _source_data_expr,
    _source_space,
)
from .conversion import PERMUTATION, SynthesisError


def case_match_stage(
    composed: ComposedRelation, notes: list[str]
) -> CaseMatch:
    """Classify the composed relation's constraints (Cases 1-5)."""
    src = composed.pair.src
    dst_r = composed.dst_renamed
    conj = composed.conjunction

    src_space = _source_space(src)
    src_vars = src.sparse_vars
    dst_vars = dst_r.sparse_vars
    dense_exprs = _dense_source_exprs(src)
    src_data_expr = _source_data_expr(src)

    # Resolve destination tuple variables over source information.
    values: dict[str, Optional[Expr]] = {
        v: Var(v).as_expr() for v in src_vars
    }
    for v in dst_vars:
        values[v] = None
    changed = True
    while changed:
        changed = False
        for v in dst_vars:
            if values[v] is not None:
                continue
            definition = conj.defining_equality(v)
            if definition is None:
                continue
            resolvable = all(
                values.get(n) is not None for n in definition.var_names()
            )
            if resolvable:
                values[v] = definition
                changed = True

    # Identify the destination position variable (the data-order variable)
    # versus search variables (trapped inside unknown-UF arguments).
    unknown_ufs = sorted(dst_r.index_ufs())
    data_conj = dst_r.data_access.single_conjunction
    kd_var = dst_r.data_access.out_vars[0]
    kd_expr = data_conj.defining_equality(kd_var)
    if kd_expr is None:
        raise SynthesisError(
            f"{dst_r.name}: data access does not define {kd_var!r}"
        )

    def is_search_var(v: str) -> bool:
        """Is ``v`` recoverable by searching an insert-populated UF?

        Only UFs with a strict monotonic quantifier can be populated by the
        insert abstraction and then searched (DIA's ``off``).  A variable
        trapped in any other unknown UF (CSR's ``col2(k)``) is not a search
        variable — it must be the ordering-determined position.
        """
        for c in conj.equalities():
            for call in c.uf_calls():
                quantifier = dst_r.monotonic.get(call.name)
                if (
                    call.name in unknown_ufs
                    and quantifier is not None
                    and quantifier.strict
                    and any(v in a.var_names() for a in call.args)
                    and c.expr.coeff(Var(v)) == 0
                ):
                    return True
        return False

    search_vars = {
        v for v in dst_vars if values[v] is None and is_search_var(v)
    }
    position_vars = [
        v for v in dst_vars if values[v] is None and v not in search_vars
    ]
    if len(position_vars) > 1:
        raise SynthesisError(
            f"multiple unresolved position variables {position_vars}; "
            "the format is under-constrained"
        )
    position_var = position_vars[0] if position_vars else None

    # Decide how positions are produced (Step 1's permutation insertion).
    identity_position = (
        _ordering_equal(src, dst_r) and _is_bare_var(src_data_expr)
    )
    preserve_order = dst_r.ordering is None and _is_bare_var(src_data_expr)
    need_perm_structure = position_var is not None and not (
        identity_position or preserve_order
    )
    use_perm_lookup = need_perm_structure
    emit_perm = position_var is not None and (
        need_perm_structure or dst_r.ordering is not None
    )
    pos_definition: Optional[Expr] = None
    if position_var is not None:
        if identity_position:
            pos_definition = src_data_expr
            notes.append(
                "orderings match and source positions are contiguous: "
                f"{position_var} = {src_data_expr} (permutation is dead code)"
            )
        elif preserve_order:
            pos_definition = src_data_expr
            notes.append(
                "destination is unordered: source traversal order reused "
                f"({position_var} = {src_data_expr})"
            )
        else:
            dense_order = list(src.dense_vars)
            pos_definition = UFCall(
                PERMUTATION, [dense_exprs[v] for v in dense_order]
            ).as_expr()
            notes.append(
                f"permutation required: {position_var} = "
                f"P({', '.join(str(dense_exprs[v]) for v in dense_order)})"
            )
        # The position variable resolves to *itself*: statements that use it
        # get their iteration space extended with its defining constraint so
        # code generation binds it once per iteration (a LetEq).  A cheap
        # definition (no permutation lookup) is instead copy-propagated into
        # statement text at emission time.
        values[position_var] = Var(position_var).as_expr()

    resolver = Resolver(values)

    # Step 3: plan population statements for every unknown UF (Cases 1-5).
    plans: list[UFStatementPlan] = []
    for uf in unknown_ufs:
        uf_plans: list[UFStatementPlan] = []
        for c in conj.constraints:
            if uf not in c.uf_names():
                continue
            normalized = normalize_for_uf(c, uf)
            if normalized is None:
                continue
            plan = classify(normalized, resolver)
            if plan is not None:
                uf_plans.append(plan)
        if not uf_plans:
            raise SynthesisError(
                f"no usable constraint to populate unknown UF {uf!r}"
            )
        chosen = select_plans(uf_plans)
        for plan in chosen:
            notes.append(f"{uf}: {plan.kind} ({plan.note})")
        dropped = len(uf_plans) - len(chosen)
        if dropped:
            notes.append(
                f"{uf}: removed {dropped} redundant candidate statement(s)"
            )
        plans.extend(chosen)
    plan_by_uf = {p.uf: p for p in plans}

    for plan in plans:
        if plan.kind == "insert":
            quantifier = dst_r.monotonic.get(plan.uf)
            if quantifier is None or not quantifier.strict:
                raise SynthesisError(
                    f"insert-populated UF {plan.uf!r} needs a strict "
                    "monotonic quantifier to fix element positions"
                )

    return CaseMatch(
        src_space=src_space,
        src_vars=tuple(src_vars),
        dst_vars=tuple(dst_vars),
        dense_exprs=dense_exprs,
        src_data_expr=src_data_expr,
        values=values,
        unknown_ufs=list(unknown_ufs),
        kd_var=kd_var,
        kd_expr=kd_expr,
        search_vars=search_vars,
        position_var=position_var,
        pos_definition=pos_definition,
        identity_position=identity_position,
        preserve_order=preserve_order,
        need_perm_structure=need_perm_structure,
        use_perm_lookup=use_perm_lookup,
        emit_perm=emit_perm,
        plans=plans,
        plan_by_uf=plan_by_uf,
    )
