"""Constraint classification: the five synthesis cases of Section 3.2.

Given the composed relation :math:`R_{A_{src} \\to A_{dest}}`, each
constraint mentioning an *unknown* uninterpreted function is normalized to
``UF(args) OP rhs`` and classified:

===== ============================== ===========================================
Case  Constraint shape               Synthesized statement
===== ============================== ===========================================
1     ``UF(u) = f(u)``               ``UF[u] = f(u)`` (assignment / scatter)
2     ``UF(f'(u)) <= f(u)``          ``UF[u'] = min(UF[u'], f(u))``
3     ``UF(u) >= f(u)``              ``UF[u'] = max(UF[u'], f(u))``
4     ``UF(u) = f(v)``               ``UF.insert(f(v))`` (v from the output tuple)
5     ``UF(v) = f(u)``               ``UF.insert(f(u))``
===== ============================== ===========================================

Cases 4/5 arise when one side involves output-tuple variables that cannot be
expressed over the input tuple; the insert abstraction (an ordered list or
set) defers the position to the ordering constraints.  When the resolution
map *can* rewrite every variable into input-tuple terms (the permutation or
identity position is known), cases 4/5 degrade to case-1 scatters — the
"exact mapping" situation the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.ir import Constraint, Eq, Expr, UFCall, Var


@dataclass(frozen=True)
class NormalizedConstraint:
    """``call OP rhs`` with OP in {'=', '<=', '>='} for one UF occurrence."""

    call: UFCall
    op: str
    rhs: Expr
    source: Constraint

    def __str__(self):
        return f"{self.call} {self.op} {self.rhs}"


def normalize_for_uf(constraint: Constraint, uf: str) -> Optional[NormalizedConstraint]:
    """Rewrite a constraint as ``uf(args) OP rhs`` when possible.

    Requires exactly one top-level occurrence of the UF with a ±1
    coefficient; the paper's format constraints all have this shape.
    """
    calls = [
        (atom, coef)
        for atom, coef in constraint.expr.terms
        if isinstance(atom, UFCall) and atom.name == uf
    ]
    if len(calls) != 1:
        return None
    call, coef = calls[0]
    if coef not in (1, -1):
        return None
    if any(c.name == uf for arg in call.args for c in arg.uf_calls()):
        return None  # self-referential, e.g. uf(uf(x))
    rest = constraint.expr.without(call)
    if any(c.name == uf for c in rest.uf_calls()):
        return None  # the UF also appears on the other side
    if isinstance(constraint, Eq):
        rhs = -rest if coef == 1 else rest
        return NormalizedConstraint(call, "=", rhs, constraint)
    # Geq: coef * call + rest >= 0
    if coef == 1:
        return NormalizedConstraint(call, ">=", -rest, constraint)
    return NormalizedConstraint(call, "<=", rest, constraint)


@dataclass
class UFStatementPlan:
    """A planned population statement for one unknown UF.

    ``kind`` is one of:

    * ``"scatter"`` — cases 1/4/5 with an exact mapping: direct store,
    * ``"min"`` / ``"max"`` — cases 2/3: reduction into the array,
    * ``"insert"`` — cases 4/5 without an exact mapping: insert into the
      ordered structure; ordering constraints fix positions later.

    ``args`` / ``value`` are fully resolved over the *source* iteration
    tuple (plus the bound position variable), ready for statement text.
    """

    uf: str
    kind: str
    args: tuple[Expr, ...]
    value: Expr
    case: int
    note: str = ""

    def preference(self) -> int:
        """Redundancy-elimination priority (lower wins, Section 3.3)."""
        order = {"insert": 0, "scatter": 1, "max": 2, "min": 3}
        return order[self.kind]


class Resolver:
    """Rewrites expressions over the composed tuple into source-tuple terms.

    ``values`` maps a tuple-variable name to its resolved expression (source
    variables, source UFs, the position variable, or symbolic constants).
    Variables mapped to ``None`` are *unresolved* — they survive only inside
    insert plans or as search loops in the copy.
    """

    def __init__(self, values: Mapping[str, Optional[Expr]]):
        self.values = dict(values)

    def resolve(self, expr: Expr) -> Optional[Expr]:
        """Resolved expression, or None if it touches an unresolved var."""
        for _ in range(16):  # chains are short; cap guards against cycles
            mapped = {n for n in expr.var_names() if n in self.values}
            if any(self.values[n] is None for n in mapped):
                return None
            substitution = {
                Var(n): self.values[n]
                for n in mapped
                if self.values[n] != Var(n).as_expr()
            }
            if not substitution:
                return expr
            rewritten = expr.substitute(substitution)
            if rewritten == expr:
                return expr
            expr = rewritten
        return expr

    def unresolved_vars(self, expr: Expr) -> set[str]:
        return {
            n
            for n in expr.var_names()
            if n in self.values and self.values[n] is None
        }


def classify(
    normalized: NormalizedConstraint, resolver: Resolver
) -> Optional[UFStatementPlan]:
    """Turn a normalized constraint into a statement plan (cases 1–5)."""
    uf = normalized.call.name
    resolved_args = [resolver.resolve(a) for a in normalized.call.args]
    resolved_rhs = resolver.resolve(normalized.rhs)

    if resolved_rhs is None:
        # The value cannot be computed from source information (yet); this
        # constraint is not usable for population in this direction.
        return None

    if all(a is not None for a in resolved_args):
        args = tuple(a for a in resolved_args if a is not None)
        if normalized.op == "=":
            return UFStatementPlan(
                uf, "scatter", args, resolved_rhs, case=1,
                note=f"case 1/4 exact mapping: {normalized}",
            )
        if normalized.op == "<=":
            return UFStatementPlan(
                uf, "min", args, resolved_rhs, case=2,
                note=f"case 2 upper bound: {normalized}",
            )
        return UFStatementPlan(
            uf, "max", args, resolved_rhs, case=3,
            note=f"case 3 lower bound: {normalized}",
        )

    if normalized.op == "=":
        # Argument depends on an unresolved output variable: the insert
        # abstraction records values and lets the ordering constraint place
        # them (case 4/5; DIA's ``off(d) = j - i`` is the canonical example).
        return UFStatementPlan(
            uf, "insert", (), resolved_rhs, case=5,
            note=f"case 4/5 insert: {normalized}",
        )
    return None


def select_plans(plans: list[UFStatementPlan]) -> list[UFStatementPlan]:
    """Redundant-statement elimination at the plan level.

    Multiple constraints can yield statements covering the same data space
    (e.g. CSR's ``rowptr`` produces both a case-2 min and a case-3 max).
    Keep the single most specific plan per UF, preferring
    insert > scatter > max > min; equally-preferred duplicates collapse.
    """
    by_uf: dict[str, UFStatementPlan] = {}
    for plan in sorted(plans, key=lambda p: p.preference()):
        if plan.uf not in by_uf:
            by_uf[plan.uf] = plan
    return list(by_uf.values())
