"""Compose stage (the paper's steps 1-2) and shared descriptor analysis.

:func:`compose_stage` renames the destination descriptor apart from the
source, inverts its sparse-to-dense map, composes with the source's, and
normalizes the resulting constraint system (range-guard pruning, Case 6
block decomposition).  The module also hosts the small descriptor-analysis
helpers every later stage leans on (dense coordinate definitions, bare-var
tests, UF domain sizing).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.formats.descriptor import FormatDescriptor
from repro.ir import (
    Conjunction,
    Constraint,
    Eq,
    Expr,
    IntSet,
    MonotonicQuantifier,
    Relation,
    Sym,
    UFCall,
    Var,
    bounds_on_var,
)
from repro.pipeline.artifacts import ComposedRelation, DescriptorPair

from .conversion import POSITION_VAR_SUFFIX, SynthesisError


def _counts_nonzeros(fmt: FormatDescriptor) -> bool:
    """Whether the format's position variable indexes nonzeros 1:1.

    True when the data access is the bare ``kd = position`` (coordinate
    and compressed formats); false for padded or aggregated layouts
    (DIA's ``kd = ND*i + d``, BCSR's block-linearized ``kd``), whose
    position counts depend on the layout parameters.
    """
    da = fmt.data_access
    if len(da.conjunctions) != 1 or len(da.out_vars) != 1:
        return False
    constraints = da.conjunctions[0].constraints
    if len(constraints) != 1 or not isinstance(constraints[0], Eq):
        return False
    kd = Var(da.out_vars[0]).as_expr()
    pos = Var(fmt.position_var).as_expr()
    return constraints[0].expr in (kd - pos, pos - kd)


def _rename_syms_relation(rel: Relation, subst: dict) -> Relation:
    return Relation(
        rel.in_vars,
        rel.out_vars,
        [
            Conjunction([c.substitute(subst) for c in conj.constraints])
            for conj in rel.conjunctions
        ],
    )


def _rename_syms_set(s: IntSet, subst: dict) -> IntSet:
    return IntSet(
        s.tuple_vars,
        [
            Conjunction([c.substitute(subst) for c in conj.constraints])
            for conj in s.conjunctions
        ],
    )


def _disambiguate(
    dst: FormatDescriptor, src: FormatDescriptor
) -> tuple[FormatDescriptor, dict[str, str]]:
    """Rename destination tuple vars (always) and colliding UFs.

    Colliding *size symbols* are renamed too, unless both formats count
    positions 1:1 with nonzeros: NNZ genuinely carries over from SCOO to
    MCOO, but BCSR3's block count NB is not BCSR2's — leaving them
    unified sizes the destination arrays with the source's block count,
    which is exactly wrong for cross-parameter conversions.  A renamed
    symbol becomes destination-only, so the sizing stage derives it from
    the position permutation (``NB2 = len(P)``).
    """
    var_map = {}
    taken = set(src.sparse_vars) | set(src.data_access.out_vars)
    for v in dst.sparse_vars + dst.data_access.out_vars:
        new = v
        while new in taken or (new != v and new in var_map.values()):
            new = new + POSITION_VAR_SUFFIX
        var_map[v] = new
        taken.add(new)

    uf_map = {}
    src_ufs = src.uf_names()
    for uf in dst.uf_names():
        new = uf
        while new in src_ufs or (new != uf and new in uf_map.values()):
            new = new + POSITION_VAR_SUFFIX
        uf_map[uf] = new

    sym_map: dict[str, str] = {}
    if not (_counts_nonzeros(src) and _counts_nonzeros(dst)):
        src_syms = src.size_symbols()
        for name in sorted(dst.size_symbols() - set(dst.shape_syms)):
            if name in src_syms:
                new = name
                while new in src_syms or new in sym_map.values():
                    new = new + POSITION_VAR_SUFFIX
                sym_map[name] = new
    subst = {Sym(a): Sym(b) for a, b in sym_map.items()}

    sd = dst.sparse_to_dense.rename_ufs(uf_map).with_tuple_vars(
        [var_map[v] for v in dst.sparse_to_dense.in_vars],
        dst.sparse_to_dense.out_vars,
    )
    da = dst.data_access.rename_ufs(uf_map).with_tuple_vars(
        [var_map[v] for v in dst.data_access.in_vars],
        [var_map[v] for v in dst.data_access.out_vars],
    )
    uf_domains = {uf_map[u]: s for u, s in dst.uf_domains.items()}
    uf_ranges = {uf_map[u]: s for u, s in dst.uf_ranges.items()}
    if subst:
        sd = _rename_syms_relation(sd, subst)
        da = _rename_syms_relation(da, subst)
        uf_domains = {
            u: _rename_syms_set(s, subst) for u, s in uf_domains.items()
        }
        uf_ranges = {
            u: _rename_syms_set(s, subst) for u, s in uf_ranges.items()
        }
    renamed = FormatDescriptor(
        name=dst.name,
        sparse_to_dense=sd,
        data_access=da,
        uf_domains=uf_domains,
        uf_ranges=uf_ranges,
        monotonic=[
            MonotonicQuantifier(uf_map[q.uf], strict=q.strict)
            for q in dst.monotonic.values()
        ],
        ordering=dst.ordering,
        coord_ufs={k: uf_map.get(v, v) for k, v in dst.coord_ufs.items()},
        shape_syms=dst.shape_syms,
        position_var=var_map.get(dst.position_var, dst.position_var),
        description=dst.description,
    )
    return renamed, uf_map


def _prune_range_guards(
    conj: Conjunction, descriptors: Sequence[FormatDescriptor]
) -> Conjunction:
    """Drop inequality constraints implied by declared UF ranges.

    The composition carries e.g. ``0 <= row1(n) < NR`` (the dense bounds
    substituted through ``i = row1(n)``), which the descriptor already
    guarantees via ``range(row1)``.  Removing them avoids per-iteration
    guards in the generated loops.
    """
    implied: set[Constraint] = set()
    ranges: dict[str, IntSet] = {}
    for desc in descriptors:
        ranges.update(desc.uf_ranges)

    def implied_by_range(c: Constraint) -> bool:
        for call in c.uf_calls():
            range_set = ranges.get(call.name)
            if range_set is None or range_set.arity != 1:
                continue
            range_var = range_set.tuple_vars[0]
            for rc in range_set.single_conjunction:
                candidate = rc.substitute({Var(range_var): call.as_expr()})
                if type(candidate) is type(c) and candidate == c:
                    return True
        return False

    for c in conj.constraints:
        if isinstance(c, Eq):
            continue
        if implied_by_range(c):
            implied.add(c)
            continue
        # Bounds on a variable defined by a UF call are implied by that
        # call's range (e.g. ``0 <= jj`` with ``jj = col2(k)``).
        rewritten = c
        for v in c.var_names():
            definition = conj.defining_equality(v)
            if definition is not None and definition.uf_names():
                rewritten = rewritten.substitute_vars({v: definition})
        if rewritten is not c and implied_by_range(rewritten):
            implied.add(c)
    return Conjunction(c for c in conj.constraints if c not in implied)


def _decompose_block_constraints(
    conj: Conjunction,
    dst_vars: set[str],
    unknown_ufs: set[str],
    notes: list[str],
) -> Conjunction:
    """Case 6: split ``e = B*x + w`` (with ``0 <= w < B``) into div/mod.

    The paper's five cases cover the formats of Table 1; blocked formats
    need one more shape, which the paper anticipates ("it may be that they
    will need to be added").  Whenever an equality contains a term ``B*x``
    (literal ``B >= 2``) plus a unit term ``w`` whose bounds ``0 <= w < B``
    appear in the conjunction, the Euclidean identity gives exact
    definitions ``x = e' // B`` and ``w = e' % B`` — turning BCSR's
    ``i = B*bi + ri`` into resolvable block/offset coordinates.
    """
    from repro.ir import FloorDiv, Mod

    constraints = list(conj.constraints)
    changed = False
    for c in list(constraints):
        if not isinstance(c, Eq):
            continue
        rewritten = None
        for atom_x, coef_x in c.expr.terms:
            B = abs(coef_x)
            if B < 2:
                continue
            # Only decompose *unknown* (destination-side) quantities;
            # rewriting known source structure would destroy the defining
            # equalities resolution relies on.
            if isinstance(atom_x, Var):
                if atom_x.name not in dst_vars:
                    continue
            elif isinstance(atom_x, UFCall):
                if atom_x.name not in unknown_ufs:
                    continue
            else:
                continue
            s = 1 if coef_x > 0 else -1
            for atom_w, coef_w in c.expr.terms:
                if atom_w is atom_x or coef_w != s:
                    continue
                if not isinstance(atom_w, Var) or atom_w.name not in dst_vars:
                    continue
                w = atom_w.name
                if not any(lo == 0 for lo in conj.lower_bounds(w)):
                    continue
                if not any(hi == B - 1 for hi in conj.upper_bounds(w)):
                    continue
                rest = (
                    c.expr
                    - Expr(terms=((atom_x, coef_x),))
                    - Expr(terms=((atom_w, coef_w),))
                )
                t_expr = rest * (-s)
                if w in t_expr.var_names():
                    continue
                rewritten = (
                    Eq(atom_x.as_expr() - FloorDiv(t_expr, B)),
                    Eq(atom_w.as_expr() - Mod(t_expr, B)),
                )
                notes.append(
                    f"case 6 block decomposition: {atom_x} = ({t_expr}) "
                    f"// {B}, {atom_w} = ({t_expr}) % {B}"
                )
                break
            if rewritten:
                break
        if rewritten:
            constraints.remove(c)
            constraints.extend(rewritten)
            changed = True
    return Conjunction(constraints) if changed else conj


def _dense_source_exprs(src: FormatDescriptor) -> dict[str, Expr]:
    """Each dense coordinate as an expression over the source tuple.

    Prefers a bare tuple variable (``ii``) over a UF call (``row1(n)``) so
    permutation keys print cheaply.
    """
    conj = src.sparse_to_dense.single_conjunction
    src_vars = set(src.sparse_vars)
    out: dict[str, Expr] = {}
    for dense in src.dense_vars:
        best: Optional[Expr] = None
        for c in conj.equalities():
            kind, expr = bounds_on_var(c, dense)
            if kind != "eq" or expr is None:
                continue
            if not (expr.var_names() <= src_vars):
                continue
            if len(expr.terms) == 1 and expr.const == 0:
                atom, coef = expr.terms[0]
                if coef == 1 and isinstance(atom, Var):
                    best = expr
                    break
            if best is None:
                best = expr
        if best is None:
            raise SynthesisError(
                f"{src.name}: dense coordinate {dense!r} has no definition "
                "over the sparse tuple"
            )
        out[dense] = best
    return out


def _dense_var_definitions(src: FormatDescriptor) -> dict[str, list[Expr]]:
    """Every source-tuple definition of each dense coordinate."""
    conj = src.sparse_to_dense.single_conjunction
    src_vars = set(src.sparse_vars)
    out: dict[str, list[Expr]] = {}
    for dense in src.dense_vars:
        defs = []
        for c in conj.equalities():
            kind, expr = bounds_on_var(c, dense)
            if kind == "eq" and expr is not None and expr.var_names() <= src_vars:
                defs.append(expr)
        out[dense] = defs
    return out


def _source_space(src: FormatDescriptor) -> IntSet:
    """The source iteration space with dense coordinates projected out."""
    space = src.sparse_to_dense.domain(strict=False)
    pruned = _prune_range_guards(space.single_conjunction, [src])
    return IntSet(space.tuple_vars, [pruned])


def _source_data_expr(src: FormatDescriptor) -> Expr:
    conj = src.data_access.single_conjunction
    out_var = src.data_access.out_vars[0]
    expr = conj.defining_equality(out_var)
    if expr is None:
        raise SynthesisError(
            f"{src.name}: data access does not define {out_var!r}"
        )
    return expr


def _ordering_equal(
    src: FormatDescriptor, dst: FormatDescriptor
) -> bool:
    """Do source and destination order nonzeros identically?"""
    if src.ordering is None or dst.ordering is None:
        return False
    rename = dict(zip(src.dense_vars, dst.dense_vars))
    src_keys = tuple(
        k.rename_vars(rename) for k in src.ordering.key_exprs
    )
    src_dense = tuple(rename[v] for v in src.ordering.dense_vars)
    return (
        src_keys == dst.ordering.key_exprs
        and src_dense == dst.ordering.dense_vars
        and src.ordering.strict == dst.ordering.strict
        and src.ordering.collapse_ties == dst.ordering.collapse_ties
    )


def _domain_size_expr(domain: IntSet) -> Expr:
    """Array length implied by a 1-D UF domain set (upper bound + 1)."""
    if domain.arity != 1:
        raise SynthesisError(f"only 1-D UF domains are supported: {domain}")
    var = domain.tuple_vars[0]
    uppers = domain.single_conjunction.upper_bounds(var)
    if not uppers:
        raise SynthesisError(f"UF domain {domain} has no upper bound")
    return uppers[0] + 1


def _is_bare_var(expr: Expr) -> bool:
    if expr.const != 0 or len(expr.terms) != 1:
        return False
    atom, coef = expr.terms[0]
    return coef == 1 and isinstance(atom, Var)


def _bare_var_name(expr: Expr) -> Optional[str]:
    if _is_bare_var(expr):
        return expr.terms[0][0].name  # type: ignore[attr-defined]
    return None


def compose_stage(
    src: FormatDescriptor, dst: FormatDescriptor, notes: list[str]
) -> ComposedRelation:
    """Steps 1-2: invert the destination map and compose with the source."""
    if src.rank != dst.rank:
        raise SynthesisError(
            f"rank mismatch: {src.name} is {src.rank}-D, {dst.name} is "
            f"{dst.rank}-D"
        )
    dst_r, uf_map = _disambiguate(dst, src)
    composed = dst_r.sparse_to_dense.inverse().compose(src.sparse_to_dense)
    conj = _prune_range_guards(composed.single_conjunction, [src, dst_r])
    conj = _decompose_block_constraints(
        conj, set(dst_r.sparse_vars), dst_r.index_ufs(), notes
    )
    notes.append(
        f"composed relation: "
        f"{Relation(composed.in_vars, composed.out_vars, [conj])}"
    )
    return ComposedRelation(
        pair=DescriptorPair(src, dst),
        dst_renamed=dst_r,
        uf_map=dict(uf_map),
        relation=composed,
        conjunction=conj,
    )
