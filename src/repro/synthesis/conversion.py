"""The synthesis result type and the engine's shared naming conventions.

This module is the bottom of the synthesis package's import graph: the
stage modules (:mod:`.compose`, :mod:`.casematch`, :mod:`.build`,
:mod:`.lower`) all import the constants and :class:`SynthesisError` from
here, and :mod:`.engine` assembles their artifacts into a
:class:`SynthesizedConversion`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import repro.obs as obs
from repro.runtime.executor import compile_inspector
from repro.spf import Computation, SymbolTable


class SynthesisError(ValueError):
    """Raised when a conversion cannot be synthesized."""


#: Suffix appended to destination tuple variables / UF names colliding
#: with the source's during disambiguation.
POSITION_VAR_SUFFIX = "2"
SOURCE_DATA = "Asrc"
DEST_DATA = "Adst"
PERMUTATION = "P"

#: Statement phases: the build stage tags every statement with its phase
#: and the engine orders statements by phase before optimization.
PH_ALLOC = 0
PH_PERM = 1
PH_PERMSYM = 2
PH_DYNALLOC = 3
PH_POP = 4
PH_SIZESYM = 5
PH_ENFORCE = 6
PH_DSTALLOC = 7
PH_COPY = 8


def _record_stmt_span(index: int, label: str, start: float, end: float):
    """The ``__OBS_STMT`` hook instrumented inspectors report through."""
    obs.add_span(label, start, end, category="execute.stmt", index=index)


def _array_bytes(value) -> int:
    """Rough allocation estimate for one inspector output."""
    nbytes = getattr(value, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    if isinstance(value, (list, tuple)):
        return 8 * len(value)
    return 8


@dataclass
class SynthesizedConversion:
    """The output of :func:`repro.synthesis.synthesize`.

    ``source`` is the generated Python inspector; :attr:`c_source` renders
    the display C version of the loop chain on demand; ``notes`` logs the
    synthesis decisions (which case produced each statement, whether the
    permutation was eliminated...).
    """

    name: str
    src_format: str
    dst_format: str
    computation: Computation
    params: tuple[str, ...]
    returns: tuple[str, ...]
    source: str
    symtab: SymbolTable
    uf_output_map: dict[str, str]
    notes: list[str] = field(default_factory=list)
    #: Lowering backend this conversion was synthesized for: ``source`` is
    #: the active backend's source, ``scalar_source`` always the scalar one.
    backend: str = "python"
    scalar_source: str = ""
    #: ``{"vectorized_nests": n, "scalar_nests": m}`` for the numpy backend.
    vector_stats: dict | None = None
    #: Memoized display-C rendering; populated lazily by :attr:`c_source`
    #: (or from the disk-cache payload when a past process rendered it).
    _c_source: str | None = None
    _compiled: object = None
    #: Per-statement instrumented compile, built lazily under tracing;
    #: ``False`` records that instrumentation was attempted and failed.
    _instrumented: object = None

    @property
    def c_source(self) -> str:
        """The display C rendering of the loop chain, generated on demand.

        Every conversion used to pay C codegen up front; now only
        consumers that ask (``repro convert --c``, the walkthrough
        example) trigger it.  Conversions rehydrated from the disk cache
        carry whatever the writing process had rendered (possibly
        nothing — the SPF intermediates needed to regenerate are not
        persisted, so the display C is empty then).
        """
        if self._c_source is None:
            if self.computation is None or self.symtab is None:
                return ""
            self._c_source = self.computation.codegen(self.symtab, lang="c")
        return self._c_source

    def compile(self):
        """Compile the generated inspector into a callable (cached)."""
        if self._compiled is None:
            self._compiled = compile_inspector(
                self.name, self.source, backend=self.backend
            )
        return self._compiled

    def __call__(self, **inputs):
        """Run the inspector; returns the dict of destination arrays.

        Results are always plain python containers, whichever backend
        lowered the inspector; use :meth:`run_native` to keep the numpy
        backend's arrays.
        """
        from repro.backends import get_backend

        result = self.run_native(**inputs)
        return get_backend(self.backend).materialize(result)

    def run_native(self, **inputs):
        """Run the inspector in its backend's native representation.

        The numpy backend returns numpy arrays (scalar-fallback values pass
        through as-is); the python backend returns lists.  Benchmarks time
        this entry point so list<->array boundary conversion is not charged
        to the inspector.

        Under tracing (``REPRO_TRACE=1`` / ``trace=True``) the run is
        wrapped in an ``execute`` span with nnz / allocation / throughput
        attributes and per-statement child spans from the instrumented
        lowering (:mod:`repro.obs.instrument`).
        """
        if obs.tracing():
            return self._run_traced(inputs)
        fn = self.compile()
        ordered = [inputs[p] for p in self.params]
        return fn(*ordered)

    def _instrumented_fn(self):
        """The per-statement instrumented callable, or None."""
        if self._instrumented is None:
            from repro.obs.instrument import instrument_source

            rewritten = instrument_source(self.source, self.name)
            if rewritten is None:
                self._instrumented = False
            else:
                try:
                    self._instrumented = compile_inspector(
                        self.name,
                        rewritten[0],
                        extra_env={
                            "__OBS_STMT": _record_stmt_span,
                            "__OBS_CLOCK": time.perf_counter,
                        },
                        backend=self.backend,
                    )
                except ValueError:
                    self._instrumented = False
        return self._instrumented or None

    def _run_traced(self, inputs: dict):
        ordered = [inputs[p] for p in self.params]
        source_data = inputs.get(SOURCE_DATA)
        nnz = len(source_data) if hasattr(source_data, "__len__") else None
        with obs.span(
            "execute",
            category="runtime",
            conversion=self.name,
            backend=self.backend,
        ) as span:
            # Per-statement hooks are deep-trace only: always-on service
            # tracing (an adopted context with detail=False) keeps the
            # execute span but runs the uninstrumented inspector.
            fn = (
                self._instrumented_fn()
                if obs.TRACER.stmt_detail()
                else None
            ) or self.compile()
            result = fn(*ordered)
        attrs = {}
        if nnz is not None:
            attrs["nnz"] = nnz
            if span.duration > 0:
                attrs["throughput_nnz_per_s"] = round(nnz / span.duration)
        if isinstance(result, dict):
            attrs["bytes_allocated"] = sum(
                _array_bytes(value) for value in result.values()
            )
        span.set(**attrs)
        return result
