"""The inspector synthesis pipeline (Section 3.2 of the paper).

Given a source and a destination :class:`~repro.formats.FormatDescriptor`,
:func:`synthesize` produces an SPF :class:`~repro.spf.Computation` that
converts a tensor between the formats, following the paper's five steps —
run as an explicit staged pipeline with typed artifacts
(:mod:`repro.pipeline.artifacts`):

1. :func:`~repro.synthesis.compose.compose_stage` — invert the
   destination sparse-to-dense map and compose it with the source's
   (steps 1-2),
2. :func:`~repro.synthesis.casematch.case_match_stage` — classify the
   composed constraints, plan one population statement per unknown UF
   (step 3, Cases 1-5),
3. :func:`~repro.synthesis.build.build_stage` — emit the raw SPF
   computation: permutation, population, quantifier enforcement, the data
   copy (steps 1, 4, 5),
4. the :data:`~repro.pipeline.PASSES` manager — run the registered
   optimization passes (dedup, dead code elimination — which removes the
   permutation when the source already satisfies the destination
   ordering — loop fusion, and the opt-in binary-search rewrite),
5. :func:`~repro.synthesis.lower.lower_stage` — lower to the selected
   backend's executable source.

This module is the orchestrator only; the heavy lifting lives in the
stage modules.
"""

from __future__ import annotations

import time

import repro.obs as obs
from repro._prof import PROF
from repro.backends import Backend, get_backend
from repro.formats.descriptor import FormatDescriptor
from repro.pipeline import BINARY_SEARCH, PASSES, PassContext

from .build import build_stage
from .casematch import case_match_stage
from .compose import (  # noqa: F401  (re-exported for compatibility)
    _bare_var_name,
    _dense_source_exprs,
    _dense_var_definitions,
    _disambiguate,
    _is_bare_var,
    _prune_range_guards,
    _source_data_expr,
    _source_space,
    compose_stage,
)
from .conversion import (  # noqa: F401  (re-exported for compatibility)
    DEST_DATA,
    PERMUTATION,
    POSITION_VAR_SUFFIX,
    SOURCE_DATA,
    SynthesisError,
    SynthesizedConversion,
)
from .lower import lower_stage


def _phase(
    name: str, start: float, span_name: str | None = None, **attrs
) -> float:
    """Close one synthesis phase: PROF timer + trace span; returns *now*.

    Each mark feeds both the flat ``synthesis.<timer>`` registry
    (historical names) and — under tracing — a child span of the enclosing
    ``synthesize`` span (pipeline taxonomy names, e.g. the ``solve``
    timer surfaces as the ``synthesis.case_match`` span).
    """
    now = time.perf_counter()
    PROF.add_time(f"synthesis.{name}", now - start)
    obs.add_span(
        f"synthesis.{span_name or name}", start, now, category="synthesis",
        **attrs,
    )
    return now


def synthesize(
    src: FormatDescriptor,
    dst: FormatDescriptor,
    *,
    optimize: bool = True,
    binary_search: bool = False,
    name: str | None = None,
    backend: "str | Backend" = "python",
    disabled_passes: tuple[str, ...] = (),
) -> SynthesizedConversion:
    """Synthesize the inspector converting ``src`` tensors into ``dst``.

    ``backend`` selects the lowering — a registered backend name
    (``"python"`` emits the scalar interpreted inspector, ``"numpy"`` the
    vectorized one) or a :class:`~repro.backends.Backend` instance.
    ``disabled_passes`` removes optimization passes by name (see
    ``repro passes``).
    """
    backend_obj = get_backend(backend)
    with obs.span(
        "synthesize",
        category="synthesis",
        src=src.name,
        dst=dst.name,
        backend=backend_obj.name,
        optimize=optimize,
    ) as span:
        conversion = _synthesize_impl(
            src,
            dst,
            optimize=optimize,
            binary_search=binary_search,
            name=name,
            backend=backend_obj,
            disabled_passes=disabled_passes,
        )
        span.set(statements=len(conversion.computation.stmts))
        return conversion


def _synthesize_impl(
    src: FormatDescriptor,
    dst: FormatDescriptor,
    *,
    optimize: bool,
    binary_search: bool,
    name: str | None,
    backend: Backend,
    disabled_passes: tuple[str, ...],
) -> SynthesizedConversion:
    # Resolve the pass pipeline up front so an unknown --disable-pass name
    # fails before any synthesis work happens.
    pass_config = PASSES.config(
        optimize=optimize,
        requested=(BINARY_SEARCH,) if binary_search else (),
        disabled=disabled_passes,
    )
    notes: list[str] = []
    fn_name = name or f"{src.name.lower()}_to_{dst.name.lower()}"

    # Phase attribution: explicit marks (not nested ``with`` blocks), so
    # stage timings land in the flat profile; see repro.evalharness.profiling.
    _mark = time.perf_counter()

    composed = compose_stage(src, dst, notes)
    uf_output_map = dict(composed.uf_map)
    _mark = _phase(
        "compose", _mark, constraints=len(composed.conjunction.constraints)
    )

    match = case_match_stage(composed, notes)
    _mark = _phase(
        "solve",
        _mark,
        span_name="case_match",
        unknown_ufs=len(match.unknown_ufs),
        plans=len(match.plans),
    )

    built = build_stage(
        composed, match, optimize=optimize, fn_name=fn_name, notes=notes
    )
    comp = built.comp
    _mark = _phase("build", _mark, statements=len(comp.stmts))

    # Optimization pipeline (Section 3.3): the registered passes.
    stmts_before_optimize = len(comp.stmts)
    start_optimize = time.perf_counter()
    with obs.span("synthesis.optimize", category="synthesis") as ospan:
        ctx = PassContext(
            comp=comp,
            returns=built.returns,
            symtab=built.symtab,
            notes=notes,
            permutation_name=PERMUTATION,
        )
        PASSES.run(ctx, pass_config)
        ospan.set(
            stmts_before=stmts_before_optimize,
            stmts_after=len(comp.stmts),
            eliminated=stmts_before_optimize - len(comp.stmts),
        )
    PROF.add_time(
        "synthesis.optimize", time.perf_counter() - start_optimize
    )
    _mark = time.perf_counter()

    lowered = lower_stage(built, backend, notes)
    _phase(
        "codegen",
        _mark,
        span_name="lower",
        backend=backend.name,
        **(lowered.vector_stats or {}),
    )

    return SynthesizedConversion(
        name=fn_name,
        src_format=src.name,
        dst_format=dst.name,
        computation=comp,
        params=built.params,
        returns=built.returns,
        source=lowered.source,
        symtab=built.symtab,
        uf_output_map=uf_output_map,
        notes=notes,
        backend=backend.name,
        scalar_source=lowered.scalar_source,
        vector_stats=lowered.vector_stats,
    )
