"""The inspector synthesis algorithm (Section 3.2 of the paper).

Given a source and a destination :class:`~repro.formats.FormatDescriptor`,
:func:`synthesize` produces an SPF :class:`~repro.spf.Computation` that
converts a tensor between the formats, following the paper's five steps:

1. invert the destination sparse-to-dense map and insert the permutation,
2. compose it with the source sparse-to-dense map,
3. for each unknown UF, synthesize a population statement (Cases 1–5),
4. enforce the destination's universal quantifiers,
5. generate the data copy.

The resulting computation is then optimized with the standard SPF
transformations (redundant statement elimination, dead code elimination —
which removes the permutation when the source already satisfies the
destination ordering — and loop fusion) and lowered to executable Python.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

import repro.obs as obs
from repro._prof import PROF
from repro.formats.descriptor import FormatDescriptor
from repro.ir import (
    Conjunction,
    Constraint,
    Eq,
    Expr,
    Geq,
    IntSet,
    MonotonicQuantifier,
    OrderingQuantifier,
    Relation,
    Sym,
    UFCall,
    Var,
    bounds_on_var,
    equals,
)
from repro.spf import Computation, Stmt, SymbolTable
from repro.spf.transforms import (
    apply_all_fusion,
    dead_code_elimination,
    eliminate_redundant_statements,
)
from repro.spf.codegen.printers import print_expr
from repro.runtime.executor import compile_inspector

from .cases import (
    NormalizedConstraint,
    Resolver,
    UFStatementPlan,
    classify,
    normalize_for_uf,
    select_plans,
)


class SynthesisError(ValueError):
    """Raised when a conversion cannot be synthesized."""


def _record_stmt_span(index: int, label: str, start: float, end: float):
    """The ``__OBS_STMT`` hook instrumented inspectors report through."""
    obs.add_span(label, start, end, category="execute.stmt", index=index)


def _array_bytes(value) -> int:
    """Rough allocation estimate for one inspector output."""
    nbytes = getattr(value, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    if isinstance(value, (list, tuple)):
        return 8 * len(value)
    return 8


POSITION_VAR_SUFFIX = "2"
SOURCE_DATA = "Asrc"
DEST_DATA = "Adst"
PERMUTATION = "P"


@dataclass
class SynthesizedConversion:
    """The output of :func:`synthesize`.

    ``source`` is the generated Python inspector; ``c_source`` the display C
    version of the loop chain; ``notes`` logs the synthesis decisions (which
    case produced each statement, whether the permutation was eliminated...).
    """

    name: str
    src_format: str
    dst_format: str
    computation: Computation
    params: tuple[str, ...]
    returns: tuple[str, ...]
    source: str
    c_source: str
    symtab: SymbolTable
    uf_output_map: dict[str, str]
    notes: list[str] = field(default_factory=list)
    #: Lowering backend this conversion was synthesized for: ``source`` is
    #: the active backend's source, ``scalar_source`` always the scalar one.
    backend: str = "python"
    scalar_source: str = ""
    #: ``{"vectorized_nests": n, "scalar_nests": m}`` for the numpy backend.
    vector_stats: dict | None = None
    _compiled: object = None
    #: Per-statement instrumented compile, built lazily under tracing;
    #: ``False`` records that instrumentation was attempted and failed.
    _instrumented: object = None

    def compile(self):
        """Compile the generated inspector into a callable (cached)."""
        if self._compiled is None:
            self._compiled = compile_inspector(
                self.name, self.source, backend=self.backend
            )
        return self._compiled

    def __call__(self, **inputs):
        """Run the inspector; returns the dict of destination arrays.

        Results are always plain python containers, whichever backend
        lowered the inspector; use :meth:`run_native` to keep the numpy
        backend's arrays.
        """
        result = self.run_native(**inputs)
        if self.backend == "numpy":
            from repro.runtime.npvec import MATERIALIZE

            return MATERIALIZE(result)
        return result

    def run_native(self, **inputs):
        """Run the inspector in its backend's native representation.

        The numpy backend returns numpy arrays (scalar-fallback values pass
        through as-is); the python backend returns lists.  Benchmarks time
        this entry point so list<->array boundary conversion is not charged
        to the inspector.

        Under tracing (``REPRO_TRACE=1`` / ``trace=True``) the run is
        wrapped in an ``execute`` span with nnz / allocation / throughput
        attributes and per-statement child spans from the instrumented
        lowering (:mod:`repro.obs.instrument`).
        """
        if obs.tracing():
            return self._run_traced(inputs)
        fn = self.compile()
        ordered = [inputs[p] for p in self.params]
        return fn(*ordered)

    def _instrumented_fn(self):
        """The per-statement instrumented callable, or None."""
        if self._instrumented is None:
            from repro.obs.instrument import instrument_source

            rewritten = instrument_source(self.source, self.name)
            if rewritten is None:
                self._instrumented = False
            else:
                try:
                    self._instrumented = compile_inspector(
                        self.name,
                        rewritten[0],
                        extra_env={
                            "__OBS_STMT": _record_stmt_span,
                            "__OBS_CLOCK": time.perf_counter,
                        },
                        backend=self.backend,
                    )
                except ValueError:
                    self._instrumented = False
        return self._instrumented or None

    def _run_traced(self, inputs: dict):
        ordered = [inputs[p] for p in self.params]
        source_data = inputs.get(SOURCE_DATA)
        nnz = len(source_data) if hasattr(source_data, "__len__") else None
        with obs.span(
            "execute",
            category="runtime",
            conversion=self.name,
            backend=self.backend,
        ) as span:
            fn = self._instrumented_fn() or self.compile()
            result = fn(*ordered)
        attrs = {}
        if nnz is not None:
            attrs["nnz"] = nnz
            if span.duration > 0:
                attrs["throughput_nnz_per_s"] = round(nnz / span.duration)
        if isinstance(result, dict):
            attrs["bytes_allocated"] = sum(
                _array_bytes(value) for value in result.values()
            )
        span.set(**attrs)
        return result


def _disambiguate(
    dst: FormatDescriptor, src: FormatDescriptor
) -> tuple[FormatDescriptor, dict[str, str]]:
    """Rename destination tuple vars (always) and colliding UFs."""
    var_map = {}
    taken = set(src.sparse_vars) | set(src.data_access.out_vars)
    for v in dst.sparse_vars + dst.data_access.out_vars:
        new = v
        while new in taken or (new != v and new in var_map.values()):
            new = new + POSITION_VAR_SUFFIX
        var_map[v] = new
        taken.add(new)

    uf_map = {}
    src_ufs = src.uf_names()
    for uf in dst.uf_names():
        new = uf
        while new in src_ufs or (new != uf and new in uf_map.values()):
            new = new + POSITION_VAR_SUFFIX
        uf_map[uf] = new

    sd = dst.sparse_to_dense.rename_ufs(uf_map).with_tuple_vars(
        [var_map[v] for v in dst.sparse_to_dense.in_vars],
        dst.sparse_to_dense.out_vars,
    )
    da = dst.data_access.rename_ufs(uf_map).with_tuple_vars(
        [var_map[v] for v in dst.data_access.in_vars],
        [var_map[v] for v in dst.data_access.out_vars],
    )
    renamed = FormatDescriptor(
        name=dst.name,
        sparse_to_dense=sd,
        data_access=da,
        uf_domains={uf_map[u]: s for u, s in dst.uf_domains.items()},
        uf_ranges={uf_map[u]: s for u, s in dst.uf_ranges.items()},
        monotonic=[
            MonotonicQuantifier(uf_map[q.uf], strict=q.strict)
            for q in dst.monotonic.values()
        ],
        ordering=dst.ordering,
        coord_ufs={k: uf_map.get(v, v) for k, v in dst.coord_ufs.items()},
        shape_syms=dst.shape_syms,
        position_var=var_map.get(dst.position_var, dst.position_var),
        description=dst.description,
    )
    return renamed, uf_map


def _prune_range_guards(
    conj: Conjunction, descriptors: Sequence[FormatDescriptor]
) -> Conjunction:
    """Drop inequality constraints implied by declared UF ranges.

    The composition carries e.g. ``0 <= row1(n) < NR`` (the dense bounds
    substituted through ``i = row1(n)``), which the descriptor already
    guarantees via ``range(row1)``.  Removing them avoids per-iteration
    guards in the generated loops.
    """
    implied: set[Constraint] = set()
    ranges: dict[str, IntSet] = {}
    for desc in descriptors:
        ranges.update(desc.uf_ranges)

    def implied_by_range(c: Constraint) -> bool:
        for call in c.uf_calls():
            range_set = ranges.get(call.name)
            if range_set is None or range_set.arity != 1:
                continue
            range_var = range_set.tuple_vars[0]
            for rc in range_set.single_conjunction:
                candidate = rc.substitute({Var(range_var): call.as_expr()})
                if type(candidate) is type(c) and candidate == c:
                    return True
        return False

    for c in conj.constraints:
        if isinstance(c, Eq):
            continue
        if implied_by_range(c):
            implied.add(c)
            continue
        # Bounds on a variable defined by a UF call are implied by that
        # call's range (e.g. ``0 <= jj`` with ``jj = col2(k)``).
        rewritten = c
        for v in c.var_names():
            definition = conj.defining_equality(v)
            if definition is not None and definition.uf_names():
                rewritten = rewritten.substitute_vars({v: definition})
        if rewritten is not c and implied_by_range(rewritten):
            implied.add(c)
    return Conjunction(c for c in conj.constraints if c not in implied)


def _decompose_block_constraints(
    conj: Conjunction,
    dst_vars: set[str],
    unknown_ufs: set[str],
    notes: list[str],
) -> Conjunction:
    """Case 6: split ``e = B*x + w`` (with ``0 <= w < B``) into div/mod.

    The paper's five cases cover the formats of Table 1; blocked formats
    need one more shape, which the paper anticipates ("it may be that they
    will need to be added").  Whenever an equality contains a term ``B*x``
    (literal ``B >= 2``) plus a unit term ``w`` whose bounds ``0 <= w < B``
    appear in the conjunction, the Euclidean identity gives exact
    definitions ``x = e' // B`` and ``w = e' % B`` — turning BCSR's
    ``i = B*bi + ri`` into resolvable block/offset coordinates.
    """
    from repro.ir import FloorDiv, Mod

    constraints = list(conj.constraints)
    changed = False
    for c in list(constraints):
        if not isinstance(c, Eq):
            continue
        rewritten = None
        for atom_x, coef_x in c.expr.terms:
            B = abs(coef_x)
            if B < 2:
                continue
            # Only decompose *unknown* (destination-side) quantities;
            # rewriting known source structure would destroy the defining
            # equalities resolution relies on.
            if isinstance(atom_x, Var):
                if atom_x.name not in dst_vars:
                    continue
            elif isinstance(atom_x, UFCall):
                if atom_x.name not in unknown_ufs:
                    continue
            else:
                continue
            s = 1 if coef_x > 0 else -1
            for atom_w, coef_w in c.expr.terms:
                if atom_w is atom_x or coef_w != s:
                    continue
                if not isinstance(atom_w, Var) or atom_w.name not in dst_vars:
                    continue
                w = atom_w.name
                if not any(lo == 0 for lo in conj.lower_bounds(w)):
                    continue
                if not any(hi == B - 1 for hi in conj.upper_bounds(w)):
                    continue
                rest = (
                    c.expr
                    - Expr(terms=((atom_x, coef_x),))
                    - Expr(terms=((atom_w, coef_w),))
                )
                t_expr = rest * (-s)
                if w in t_expr.var_names():
                    continue
                rewritten = (
                    Eq(atom_x.as_expr() - FloorDiv(t_expr, B)),
                    Eq(atom_w.as_expr() - Mod(t_expr, B)),
                )
                notes.append(
                    f"case 6 block decomposition: {atom_x} = ({t_expr}) "
                    f"// {B}, {atom_w} = ({t_expr}) % {B}"
                )
                break
            if rewritten:
                break
        if rewritten:
            constraints.remove(c)
            constraints.extend(rewritten)
            changed = True
    return Conjunction(constraints) if changed else conj


def _dense_source_exprs(src: FormatDescriptor) -> dict[str, Expr]:
    """Each dense coordinate as an expression over the source tuple.

    Prefers a bare tuple variable (``ii``) over a UF call (``row1(n)``) so
    permutation keys print cheaply.
    """
    conj = src.sparse_to_dense.single_conjunction
    src_vars = set(src.sparse_vars)
    out: dict[str, Expr] = {}
    for dense in src.dense_vars:
        best: Optional[Expr] = None
        for c in conj.equalities():
            kind, expr = bounds_on_var(c, dense)
            if kind != "eq" or expr is None:
                continue
            if not (expr.var_names() <= src_vars):
                continue
            if len(expr.terms) == 1 and expr.const == 0:
                atom, coef = expr.terms[0]
                if coef == 1 and isinstance(atom, Var):
                    best = expr
                    break
            if best is None:
                best = expr
        if best is None:
            raise SynthesisError(
                f"{src.name}: dense coordinate {dense!r} has no definition "
                "over the sparse tuple"
            )
        out[dense] = best
    return out


def _dense_var_definitions(src: FormatDescriptor) -> dict[str, list[Expr]]:
    """Every source-tuple definition of each dense coordinate."""
    conj = src.sparse_to_dense.single_conjunction
    src_vars = set(src.sparse_vars)
    out: dict[str, list[Expr]] = {}
    for dense in src.dense_vars:
        defs = []
        for c in conj.equalities():
            kind, expr = bounds_on_var(c, dense)
            if kind == "eq" and expr is not None and expr.var_names() <= src_vars:
                defs.append(expr)
        out[dense] = defs
    return out


def _source_space(src: FormatDescriptor) -> IntSet:
    """The source iteration space with dense coordinates projected out."""
    space = src.sparse_to_dense.domain(strict=False)
    pruned = _prune_range_guards(space.single_conjunction, [src])
    return IntSet(space.tuple_vars, [pruned])


def _source_data_expr(src: FormatDescriptor) -> Expr:
    conj = src.data_access.single_conjunction
    out_var = src.data_access.out_vars[0]
    expr = conj.defining_equality(out_var)
    if expr is None:
        raise SynthesisError(
            f"{src.name}: data access does not define {out_var!r}"
        )
    return expr


def _ordering_equal(
    src: FormatDescriptor, dst: FormatDescriptor
) -> bool:
    """Do source and destination order nonzeros identically?"""
    if src.ordering is None or dst.ordering is None:
        return False
    rename = dict(zip(src.dense_vars, dst.dense_vars))
    src_keys = tuple(
        k.rename_vars(rename) for k in src.ordering.key_exprs
    )
    src_dense = tuple(rename[v] for v in src.ordering.dense_vars)
    return (
        src_keys == dst.ordering.key_exprs
        and src_dense == dst.ordering.dense_vars
        and src.ordering.strict == dst.ordering.strict
        and src.ordering.collapse_ties == dst.ordering.collapse_ties
    )


def _domain_size_expr(domain: IntSet) -> Expr:
    """Array length implied by a 1-D UF domain set (upper bound + 1)."""
    if domain.arity != 1:
        raise SynthesisError(f"only 1-D UF domains are supported: {domain}")
    var = domain.tuple_vars[0]
    uppers = domain.single_conjunction.upper_bounds(var)
    if not uppers:
        raise SynthesisError(f"UF domain {domain} has no upper bound")
    return uppers[0] + 1


def _is_bare_var(expr: Expr) -> bool:
    if expr.const != 0 or len(expr.terms) != 1:
        return False
    atom, coef = expr.terms[0]
    return coef == 1 and isinstance(atom, Var)


def _bare_var_name(expr: Expr) -> Optional[str]:
    if _is_bare_var(expr):
        return expr.terms[0][0].name  # type: ignore[attr-defined]
    return None


def _bucket_permutation_spec(
    src: FormatDescriptor, dst: FormatDescriptor
) -> Optional[tuple[str, Expr]]:
    """Detect when the permutation reduces to a stable bucket sort.

    Both orderings must be plain lexicographic; with the destination key
    ``(c, rest...)``, removing ``c`` from the source key must leave exactly
    ``rest`` — then source order already sorts entries within each value of
    ``c`` and a stable counting sort by ``c`` realizes the destination
    order.  Returns ``(bucket_dense_var, nbuckets_expr)`` or None.
    """
    if src.ordering is None or dst.ordering is None:
        return None
    rename = dict(zip(src.dense_vars, dst.dense_vars))
    src_key = [
        _bare_var_name(k.rename_vars(rename)) for k in src.ordering.key_exprs
    ]
    dst_key = [_bare_var_name(k) for k in dst.ordering.key_exprs]
    if any(v is None for v in src_key + dst_key):
        return None
    if set(src_key) != set(dst_key) or len(dst_key) < 2:
        return None
    bucket = dst_key[0]
    if [v for v in src_key if v != bucket] != dst_key[1:]:
        return None
    # Bucket count: the dense bound of the bucket coordinate in the
    # destination map's range (e.g. 0 <= j < NC gives NC buckets).
    dense_range = dst.sparse_to_dense.range(strict=False)
    uppers = dense_range.single_conjunction.upper_bounds(bucket)
    if not uppers:
        return None
    back = dict(zip(dst.dense_vars, src.dense_vars))
    return back.get(bucket, bucket), uppers[0] + 1


def _phase(
    name: str, start: float, span_name: str | None = None, **attrs
) -> float:
    """Close one synthesis phase: PROF timer + trace span; returns *now*.

    The engine marks phases with explicit timestamps instead of ``with``
    blocks so the long build section keeps its indentation; each mark
    feeds both the flat ``synthesis.<timer>`` registry (historical
    names) and — under tracing — a child span of the enclosing
    ``synthesize`` span (pipeline taxonomy names, e.g. the ``solve``
    timer surfaces as the ``synthesis.case_match`` span).
    """
    now = time.perf_counter()
    PROF.add_time(f"synthesis.{name}", now - start)
    obs.add_span(
        f"synthesis.{span_name or name}", start, now, category="synthesis",
        **attrs,
    )
    return now


def synthesize(
    src: FormatDescriptor,
    dst: FormatDescriptor,
    *,
    optimize: bool = True,
    binary_search: bool = False,
    name: str | None = None,
    backend: str = "python",
) -> SynthesizedConversion:
    """Synthesize the inspector converting ``src`` tensors into ``dst``.

    ``backend`` selects the lowering: ``"python"`` emits the scalar
    interpreted inspector, ``"numpy"`` the vectorized one (unmatched loop
    nests fall back to scalar statements inside the same function).
    """
    with obs.span(
        "synthesize",
        category="synthesis",
        src=src.name,
        dst=dst.name,
        backend=backend,
        optimize=optimize,
    ) as span:
        conversion = _synthesize_impl(
            src,
            dst,
            optimize=optimize,
            binary_search=binary_search,
            name=name,
            backend=backend,
        )
        span.set(statements=len(conversion.computation.stmts))
        return conversion


def _synthesize_impl(
    src: FormatDescriptor,
    dst: FormatDescriptor,
    *,
    optimize: bool = True,
    binary_search: bool = False,
    name: str | None = None,
    backend: str = "python",
) -> SynthesizedConversion:
    if backend not in ("python", "numpy"):
        raise ValueError(f"unknown lowering backend {backend!r}")
    if src.rank != dst.rank:
        raise SynthesisError(
            f"rank mismatch: {src.name} is {src.rank}-D, {dst.name} is "
            f"{dst.rank}-D"
        )
    notes: list[str] = []
    fn_name = name or f"{src.name.lower()}_to_{dst.name.lower()}"

    # Phase attribution: explicit marks (not nested ``with`` blocks) so the
    # long build section keeps its indentation; see repro.evalharness.profiling.
    _mark = time.perf_counter()

    dst_r, uf_map = _disambiguate(dst, src)
    uf_output_map = {orig: new for orig, new in uf_map.items()}

    # Step 1 + 2: invert the destination map and compose with the source.
    composed = dst_r.sparse_to_dense.inverse().compose(src.sparse_to_dense)
    conj = _prune_range_guards(composed.single_conjunction, [src, dst_r])
    conj = _decompose_block_constraints(
        conj, set(dst_r.sparse_vars), dst_r.index_ufs(), notes
    )
    notes.append(f"composed relation: {Relation(composed.in_vars, composed.out_vars, [conj])}")
    _mark = _phase("compose", _mark, constraints=len(conj.constraints))

    src_space = _source_space(src)
    src_vars = src.sparse_vars
    dst_vars = dst_r.sparse_vars
    dense_exprs = _dense_source_exprs(src)
    src_data_expr = _source_data_expr(src)

    # Resolve destination tuple variables over source information.
    values: dict[str, Optional[Expr]] = {
        v: Var(v).as_expr() for v in src_vars
    }
    for v in dst_vars:
        values[v] = None
    changed = True
    while changed:
        changed = False
        for v in dst_vars:
            if values[v] is not None:
                continue
            definition = conj.defining_equality(v)
            if definition is None:
                continue
            resolvable = all(
                values.get(n) is not None for n in definition.var_names()
            )
            if resolvable:
                values[v] = definition
                changed = True

    # Identify the destination position variable (the data-order variable)
    # versus search variables (trapped inside unknown-UF arguments).
    unknown_ufs = sorted(dst_r.index_ufs())
    data_conj = dst_r.data_access.single_conjunction
    kd_var = dst_r.data_access.out_vars[0]
    kd_expr = data_conj.defining_equality(kd_var)
    if kd_expr is None:
        raise SynthesisError(
            f"{dst.name}: data access does not define {kd_var!r}"
        )

    def is_search_var(v: str) -> bool:
        """Is ``v`` recoverable by searching an insert-populated UF?

        Only UFs with a strict monotonic quantifier can be populated by the
        insert abstraction and then searched (DIA's ``off``).  A variable
        trapped in any other unknown UF (CSR's ``col2(k)``) is not a search
        variable — it must be the ordering-determined position.
        """
        for c in conj.equalities():
            for call in c.uf_calls():
                quantifier = dst_r.monotonic.get(call.name)
                if (
                    call.name in unknown_ufs
                    and quantifier is not None
                    and quantifier.strict
                    and any(v in a.var_names() for a in call.args)
                    and c.expr.coeff(Var(v)) == 0
                ):
                    return True
        return False

    search_vars = {
        v for v in dst_vars if values[v] is None and is_search_var(v)
    }
    position_vars = [
        v for v in dst_vars if values[v] is None and v not in search_vars
    ]
    if len(position_vars) > 1:
        raise SynthesisError(
            f"multiple unresolved position variables {position_vars}; "
            "the format is under-constrained"
        )
    position_var = position_vars[0] if position_vars else None

    # Decide how positions are produced (Step 1's permutation insertion).
    identity_position = (
        _ordering_equal(src, dst_r) and _is_bare_var(src_data_expr)
    )
    preserve_order = dst_r.ordering is None and _is_bare_var(src_data_expr)
    need_perm_structure = position_var is not None and not (
        identity_position or preserve_order
    )
    use_perm_lookup = need_perm_structure
    emit_perm = position_var is not None and (
        need_perm_structure or dst_r.ordering is not None
    )
    pos_definition: Optional[Expr] = None
    if position_var is not None:
        if identity_position:
            pos_definition = src_data_expr
            notes.append(
                "orderings match and source positions are contiguous: "
                f"{position_var} = {src_data_expr} (permutation is dead code)"
            )
        elif preserve_order:
            pos_definition = src_data_expr
            notes.append(
                "destination is unordered: source traversal order reused "
                f"({position_var} = {src_data_expr})"
            )
        else:
            dense_order = list(src.dense_vars)
            pos_definition = UFCall(
                PERMUTATION, [dense_exprs[v] for v in dense_order]
            ).as_expr()
            notes.append(
                f"permutation required: {position_var} = "
                f"P({', '.join(str(dense_exprs[v]) for v in dense_order)})"
            )
        # The position variable resolves to *itself*: statements that use it
        # get their iteration space extended with its defining constraint so
        # code generation binds it once per iteration (a LetEq).  A cheap
        # definition (no permutation lookup) is instead copy-propagated into
        # statement text at emission time.
        values[position_var] = Var(position_var).as_expr()

    resolver = Resolver(values)

    # Step 3: plan population statements for every unknown UF (Cases 1-5).
    plans: list[UFStatementPlan] = []
    for uf in unknown_ufs:
        uf_plans: list[UFStatementPlan] = []
        for c in conj.constraints:
            if uf not in c.uf_names():
                continue
            normalized = normalize_for_uf(c, uf)
            if normalized is None:
                continue
            plan = classify(normalized, resolver)
            if plan is not None:
                uf_plans.append(plan)
        if not uf_plans:
            raise SynthesisError(
                f"no usable constraint to populate unknown UF {uf!r}"
            )
        chosen = select_plans(uf_plans)
        for plan in chosen:
            notes.append(f"{uf}: {plan.kind} ({plan.note})")
        dropped = len(uf_plans) - len(chosen)
        if dropped:
            notes.append(
                f"{uf}: removed {dropped} redundant candidate statement(s)"
            )
        plans.extend(chosen)
    plan_by_uf = {p.uf: p for p in plans}

    for plan in plans:
        if plan.kind == "insert":
            quantifier = dst_r.monotonic.get(plan.uf)
            if quantifier is None or not quantifier.strict:
                raise SynthesisError(
                    f"insert-populated UF {plan.uf!r} needs a strict "
                    "monotonic quantifier to fix element positions"
                )
    _mark = _phase(
        "solve",
        _mark,
        span_name="case_match",
        unknown_ufs=len(unknown_ufs),
        plans=len(plans),
    )

    # ------------------------------------------------------------------
    # Build the computation.
    # ------------------------------------------------------------------
    symtab = SymbolTable(
        arrays=(
            set(src.index_ufs())
            | set(dst_r.index_ufs())
            | {SOURCE_DATA, DEST_DATA}
        ),
        functions={"MORTON", "MORTON2", "MORTON3", "BSEARCH"},
        objects={PERMUTATION},
    )
    pexpr = lambda e: print_expr(e, symtab, "py")

    params = sorted(src.index_ufs()) + sorted(src.size_symbols()) + [SOURCE_DATA]
    param_set = set(params)
    comp = Computation(fn_name)
    empty_space = IntSet(())

    PH_ALLOC, PH_PERM, PH_PERMSYM, PH_DYNALLOC, PH_POP = 0, 1, 2, 3, 4
    PH_SIZESYM, PH_ENFORCE, PH_DSTALLOC, PH_COPY = 5, 6, 7, 8

    # --- derived size symbols (decided first: whether any symbol needs
    # ``len(P)`` controls how the permutation may be implemented) --------
    derived_syms = sorted(dst_r.size_symbols() - set(src.size_symbols()))
    sym_sources: dict[str, str] = {}
    insert_ufs = [p.uf for p in plans if p.kind == "insert"]
    for sym in list(derived_syms):
        # A symbol bounding an insert-populated UF's domain is its length.
        for uf in insert_ufs:
            domain = dst_r.uf_domains.get(uf)
            if domain is not None and sym in domain.sym_names():
                sym_sources[sym] = uf
                break
        else:
            # ``len(P)`` counts distinct destination positions, so it can
            # only stand in for a symbol that bounds the *position-indexed*
            # arrays: some unknown UF must be applied to the bare position
            # variable and carry this symbol as its domain bound (CSR's
            # ``col2(k)`` with domain NNZ; BCSR's ``bcol(bk)`` with domain
            # NB).  ELL's width ``W`` has no such witness and is rejected.
            def counts_positions(symbol: str) -> bool:
                if position_var is None:
                    return False
                for c in conj.constraints:
                    for call in c.uf_calls():
                        if (
                            call.name in unknown_ufs
                            and call.args == (Var(position_var).as_expr(),)
                        ):
                            domain = dst_r.uf_domains.get(call.name)
                            if domain is not None and symbol in domain.sym_names():
                                return True
                return False

            if use_perm_lookup and counts_positions(sym):
                sym_sources[sym] = PERMUTATION
            else:
                raise SynthesisError(
                    f"cannot derive destination size symbol {sym!r} from "
                    "the source format"
                )

    # --- permutation population -------------------------------------
    bucket_spec = (
        _bucket_permutation_spec(src, dst_r) if need_perm_structure else None
    )
    inline_bucket = (
        bucket_spec is not None
        and optimize
        and all(origin != PERMUTATION for origin in sym_sources.values())
    )
    pos_stateful = False
    if emit_perm and inline_bucket:
        # Specialize *and inline* the permutation: a stable counting sort
        # over the leading destination key component, maintained directly in
        # index arrays (no per-element structure calls).
        assert bucket_spec is not None
        bucket_var, nbuckets = bucket_spec
        bexpr = pexpr(dense_exprs[bucket_var])
        comp.new_stmt(
            f"P_count = [0] * ({pexpr(nbuckets + 1)})",
            empty_space,
            writes=["P_count"],
            phase=PH_ALLOC,
        )
        comp.new_stmt(
            f"P_count[{bexpr} + 1] += 1",
            src_space,
            reads=sorted(src.index_ufs()),
            writes=["P_count"],
            phase=PH_PERM,
        )
        prefix_space = IntSet(
            ("x",),
            [Conjunction([Geq(Var("x") - 1), Geq(nbuckets - Var("x"))])],
        )
        comp.new_stmt(
            "P_count[x] = P_count[x] + P_count[x - 1]",
            prefix_space,
            reads=["P_count"],
            writes=["P_count"],
            phase=PH_PERMSYM,
        )
        comp.new_stmt(
            "P_fill = list(P_count)",
            empty_space,
            reads=["P_count"],
            writes=["P_fill"],
            phase=PH_PERMSYM,
        )
        pos_stateful = True
        pos_definition = None
        notes.append(
            "lexicographic reordering realized as an inlined stable bucket "
            f"sort over {bucket_var} ({nbuckets} buckets)"
        )
    elif emit_perm and bucket_spec is not None:
        dense_order = list(src.dense_vars)
        bucket_var, nbuckets = bucket_spec
        which = dense_order.index(bucket_var)
        comp.new_stmt(
            f"{PERMUTATION} = LexBucketPermutation({pexpr(nbuckets)}, "
            f"{which}, {len(dense_order)})",
            empty_space,
            writes=[PERMUTATION],
            phase=PH_ALLOC,
        )
        insert_args = ", ".join(pexpr(dense_exprs[v]) for v in dense_order)
        comp.new_stmt(
            f"{PERMUTATION}.insert({insert_args})",
            src_space,
            reads=sorted(src.index_ufs()),
            writes=[PERMUTATION],
            phase=PH_PERM,
        )
        notes.append(
            "lexicographic reordering realized as a stable bucket sort: "
            f"P = LexBucketPermutation({nbuckets}, which={which})"
        )
    elif emit_perm:
        dense_order = list(src.dense_vars)
        if dst_r.ordering is not None:
            # Lambda parameters follow the dense-space order used at insert
            # time; the key body is the destination's ordering key rewritten
            # over the source's dense variable names (positional match).
            to_src = dict(zip(dst_r.dense_vars, src.dense_vars))
            key_body = ", ".join(
                pexpr(k.rename_vars(to_src)) for k in dst_r.ordering.key_exprs
            )
            lambda_params = ", ".join(dense_order)
            key_text = f"lambda {lambda_params}: ({key_body},)"
            op = "<"
        else:
            key_text = "None"
            op = "<"
        unique_text = (
            ", unique=True"
            if dst_r.ordering is not None and dst_r.ordering.collapse_ties
            else ""
        )
        comp.new_stmt(
            f"{PERMUTATION} = OrderedList({len(dense_order)}, 1, "
            f"key={key_text}, op=\"{op}\"{unique_text})",
            empty_space,
            writes=[PERMUTATION],
            phase=PH_ALLOC,
        )
        insert_args = ", ".join(pexpr(dense_exprs[v]) for v in dense_order)
        comp.new_stmt(
            f"{PERMUTATION}.insert({insert_args})",
            src_space,
            reads=sorted(src.index_ufs()),
            writes=[PERMUTATION],
            phase=PH_PERM,
        )
        notes.append(
            f"P = OrderedList({len(dense_order)}, 1, key={key_text}, op='<')"
        )

    for sym, origin in sym_sources.items():
        if origin == PERMUTATION:
            comp.new_stmt(
                f"{sym} = len({PERMUTATION})",
                empty_space,
                reads=[PERMUTATION],
                writes=[sym],
                phase=PH_PERMSYM,
            )
            notes.append(f"{sym} = len(P) (derived from the permutation)")

    # Reduction strengthening (the paper's "loop fusion and dead code
    # elimination make it a simple assignment"): when destination positions
    # ascend along the source traversal — the identity-position case — each
    # min/max reduction slot is last written by its extremal value, so the
    # reduction degrades to a plain assignment.
    ascending_positions = optimize and position_var is not None and (
        identity_position or preserve_order
    )
    if ascending_positions:
        for plan in plans:
            if plan.kind == "max" and position_var is not None and any(
                position_var in e.var_names()
                for e in list(plan.args) + [plan.value]
            ):
                plan.kind = "scatter"
                notes.append(
                    f"{plan.uf}: max reduction strengthened to assignment "
                    "(positions ascend along the source traversal)"
                )
    elif optimize and bucket_spec is not None and position_var is not None:
        # With a stable bucket permutation, positions ascend *within each
        # bucket*: a max reduction whose target slot is a function of the
        # bucket coordinate alone is last-written by its maximum.  The
        # bucket coordinate may appear as any of its source-side
        # definitions (the tuple variable or the coordinate UF).
        bucket_defs = _dense_var_definitions(src).get(bucket_spec[0], [])
        for plan in plans:
            if (
                plan.kind == "max"
                and len(plan.args) == 1
                and any(
                    (plan.args[0] - d).is_constant() for d in bucket_defs
                )
                and position_var in plan.value.var_names()
            ):
                plan.kind = "scatter"
                notes.append(
                    f"{plan.uf}: max reduction strengthened to assignment "
                    "(positions ascend within each bucket)"
                )

    # Pointer aliasing (with the inlined bucket sort): a UF populated as
    # ``uf[bucket + 1] = position + 1`` is exactly the counting sort's
    # prefix array — ``uf[b]`` is the start of bucket ``b`` — so the
    # per-element stores and the monotonic fix-up for empty buckets collapse
    # into one array copy taken after the prefix pass.
    aliased_ufs: set[str] = set()
    if pos_stateful and bucket_spec is not None and position_var is not None:
        bucket_defs = _dense_var_definitions(src).get(bucket_spec[0], [])
        for plan in list(plans):
            if (
                plan.kind == "scatter"
                and len(plan.args) == 1
                and any((plan.args[0] - d) == 1 for d in bucket_defs)
                and (plan.value - Var(position_var)) == 1
            ):
                plans.remove(plan)
                comp.new_stmt(
                    f"{plan.uf} = list(P_count)",
                    empty_space,
                    reads=["P_count"],
                    writes=[plan.uf],
                    phase=PH_PERMSYM,
                )
                aliased_ufs.add(plan.uf)
                notes.append(
                    f"{plan.uf}: aliased to the counting sort's prefix "
                    "array (per-element stores and monotonic fix-up "
                    "eliminated)"
                )

    # --- allocations ---------------------------------------------------
    def alloc_phase_for(size_expr: Expr) -> int:
        needed = size_expr.sym_names() - param_set
        if not needed:
            return PH_ALLOC
        if needed <= {s for s, o in sym_sources.items() if o == PERMUTATION}:
            return PH_DYNALLOC
        return PH_DSTALLOC

    array_plans = [p for p in plans if p.kind in ("scatter", "min", "max")]
    for plan in array_plans:
        domain = dst_r.uf_domains.get(plan.uf)
        if domain is None:
            raise SynthesisError(f"UF {plan.uf!r} has no declared domain")
        size = _domain_size_expr(domain)
        init = "0" if plan.kind in ("scatter", "max") else pexpr(
            _domain_size_expr(dst_r.uf_ranges[plan.uf])
            if plan.uf in dst_r.uf_ranges
            else Expr(0)
        )
        comp.new_stmt(
            f"{plan.uf} = [{init}] * ({pexpr(size)})",
            empty_space,
            writes=[plan.uf],
            phase=alloc_phase_for(size),
        )
    for uf in insert_ufs:
        comp.new_stmt(
            f"{uf} = OrderedSet()",
            empty_space,
            writes=[uf],
            phase=PH_ALLOC,
        )

    # --- population ------------------------------------------------------
    def extended_space(extra_pos: bool) -> IntSet:
        """Source space, optionally extended with the bound position var."""
        if not extra_pos or position_var is None:
            return src_space
        assert pos_definition is not None
        constraint = equals(Var(position_var), pos_definition)
        return IntSet(
            src_space.tuple_vars + (position_var,),
            [src_space.single_conjunction.add(constraint)],
        )

    population_reads = sorted(src.index_ufs()) + (
        [PERMUTATION] if (use_perm_lookup and not pos_stateful) else []
    )
    if pos_stateful:
        assert position_var is not None and bucket_spec is not None
        bexpr = pexpr(dense_exprs[bucket_spec[0]])
        comp.new_stmt(
            f"{position_var} = P_fill[{bexpr}]\n"
            f"P_fill[{bexpr}] = {position_var} + 1",
            src_space,
            reads=sorted(src.index_ufs()) + ["P_fill"],
            writes=["__pos__", "P_fill"],
            phase=PH_POP,
        )
        population_reads = population_reads + ["__pos__"]

    # Copy-propagate a cheap position definition (no permutation lookup)
    # directly into statement expressions; expensive definitions stay as a
    # once-per-iteration LetEq via the extended iteration space.
    propagate_pos = (
        position_var is not None
        and pos_definition is not None
        and not pos_definition.uf_calls()
    )

    def finalize_expr(expr: Expr) -> Expr:
        if propagate_pos and position_var in expr.var_names():
            assert pos_definition is not None and position_var is not None
            return expr.substitute_vars({position_var: pos_definition})
        return expr

    for plan in plans:
        uses_pos = position_var is not None and any(
            position_var in e.var_names()
            for e in list(plan.args) + [plan.value]
        )
        space = extended_space(
            uses_pos and not propagate_pos and not pos_stateful
        )
        args = [finalize_expr(a) for a in plan.args]
        value = finalize_expr(plan.value)
        if plan.kind == "insert":
            text = f"{plan.uf}.insert({pexpr(value)})"
        elif plan.kind == "scatter":
            index = ", ".join(pexpr(a) for a in args)
            text = f"{plan.uf}[{index}] = {pexpr(value)}"
        else:
            fn = "max" if plan.kind == "max" else "min"
            index = ", ".join(pexpr(a) for a in args)
            text = (
                f"{plan.uf}[{index}] = {fn}({plan.uf}[{index}], "
                f"{pexpr(value)})"
            )
        comp.new_stmt(
            text,
            space,
            reads=population_reads,
            writes=[plan.uf],
            phase=PH_POP,
        )

    # --- size symbols from insert structures ----------------------------
    for sym, origin in sym_sources.items():
        if origin != PERMUTATION:
            comp.new_stmt(
                f"{sym} = len({origin})",
                empty_space,
                reads=[origin],
                writes=[sym],
                phase=PH_SIZESYM,
            )
            notes.append(f"{sym} = len({origin}) (insert-populated UF size)")

    # --- Step 4: enforce universal quantifiers --------------------------
    enforced_ufs: set[str] = set()
    for uf, quantifier in dst_r.monotonic.items():
        if uf in aliased_ufs:
            # Prefix sums are non-decreasing by construction.
            enforced_ufs.add(uf)
            continue
        plan = plan_by_uf.get(uf)
        if plan is None:
            continue
        if plan.kind == "insert":
            enforced_ufs.add(uf)  # the OrderedSet enforces on insert
            if optimize:
                # Materialize to a plain array before the copy consumes it:
                # guards and binary searches then index without structure
                # call overhead.
                comp.new_stmt(
                    f"{uf} = {uf}.to_list()",
                    empty_space,
                    reads=[uf],
                    writes=[uf],
                    phase=PH_ENFORCE,
                )
            notes.append(
                f"{uf}: strict monotonic quantifier enforced by the "
                "ordered insert structure"
            )
            continue
        if quantifier.strict:
            raise SynthesisError(
                f"strictly monotonic UF {uf!r} populated by "
                f"{plan.kind!r} cannot be enforced"
            )
        domain = dst_r.uf_domains[uf]
        dvar = domain.tuple_vars[0]
        upper = domain.single_conjunction.upper_bounds(dvar)[0]
        enforce_space = IntSet(
            (dvar,),
            [
                Conjunction(
                    [Geq(Var(dvar) - 1), Geq(upper - Var(dvar))]
                )
            ],
        )
        comp.new_stmt(
            f"{uf}[{dvar}] = max({uf}[{dvar}], {uf}[{dvar} - 1])",
            enforce_space,
            reads=[uf],
            writes=[uf],
            phase=PH_ENFORCE,
        )
        enforced_ufs.add(uf)
        notes.append(
            f"{uf}: monotonic quantifier enforced by a forward max pass"
        )

    # --- destination data allocation ------------------------------------
    if (
        position_var is not None
        and _is_bare_var(kd_expr)
        and position_var in kd_expr.var_names()
    ):
        # Positional layout: one slot per nonzero.
        nnz_sym = None
        for candidate in ("NNZ",):
            if candidate in (src.size_symbols() | set(sym_sources)):
                nnz_sym = candidate
        if nnz_sym is None:
            raise SynthesisError("cannot size the destination data array")
        dst_size = Sym(nnz_sym).as_expr()
    else:
        # Strided layout (DIA, BCSR): substitute each variable's maximum.
        # A variable whose only upper bounds involve UF calls (BCSR's
        # ``bk < browptr(bi+1)``) is bounded instead by the domain of an
        # unknown UF indexed by it (``bcol``'s domain gives ``bk < NB``).
        substitution: dict = {}
        dst_conj = dst_r.sparse_to_dense.domain(
            strict=False
        ).single_conjunction
        for v in kd_expr.var_names():
            uppers = [
                u for u in dst_conj.upper_bounds(v) if not u.uf_calls()
            ]
            if not uppers:
                for c in conj.constraints:
                    for call in c.uf_calls():
                        if (
                            call.name in unknown_ufs
                            and call.args == (Var(v).as_expr(),)
                        ):
                            domain = dst_r.uf_domains.get(call.name)
                            if domain is None:
                                continue
                            dvar = domain.tuple_vars[0]
                            uppers = domain.single_conjunction.upper_bounds(
                                dvar
                            )
                            if uppers:
                                break
                    if uppers:
                        break
            if not uppers:
                raise SynthesisError(
                    f"cannot bound {v!r} to size the destination data array"
                )
            substitution[Var(v)] = uppers[0]
        dst_size = kd_expr.substitute(substitution) + 1
    comp.new_stmt(
        f"{DEST_DATA} = [0.0] * ({pexpr(dst_size)})",
        empty_space,
        writes=[DEST_DATA],
        phase=alloc_phase_for(dst_size),
    )

    # --- Step 5: the copy -------------------------------------------------
    copy_vars = list(src_space.tuple_vars)
    copy_constraints = list(src_space.single_conjunction.constraints)
    needed_dst_vars: list[str] = []

    def need_var(v: str):
        if v in needed_dst_vars or v in copy_vars:
            return
        needed_dst_vars.append(v)

    copy_kd_expr = finalize_expr(kd_expr)
    for v in copy_kd_expr.var_names():
        if v in dst_vars:
            if pos_stateful and v == position_var:
                continue  # bound by the stateful position statement
            need_var(v)
    # Pull in transitive dependencies of resolvable vars.
    frontier = list(needed_dst_vars)
    while frontier:
        v = frontier.pop()
        value = values.get(v)
        if value is None:
            continue
        for dep in value.var_names():
            if dep in dst_vars and dep not in needed_dst_vars:
                needed_dst_vars.append(dep)
                frontier.append(dep)

    resolvable = [v for v in needed_dst_vars if values[v] is not None]
    # Bind the position first so fusion can share its (possibly expensive)
    # permutation lookup with the population statements.
    resolvable.sort(key=lambda v: 0 if v == position_var else 1)
    searches = [v for v in needed_dst_vars if values[v] is None]
    for v in resolvable:
        copy_vars.append(v)
        value = pos_definition if v == position_var else values[v]
        assert value is not None
        copy_constraints.append(equals(Var(v), value))
    for v in searches:
        if v not in search_vars:
            raise SynthesisError(
                f"variable {v!r} in the data layout is neither resolvable "
                "nor searchable"
            )
        copy_vars.append(v)
        for c in conj.constraints:
            if not c.mentions_var(v):
                continue
            # Rewrite the constraint over source terms where possible.
            rewritten = c
            for name in c.var_names():
                if name in values and values[name] is not None and name != v:
                    rewritten = rewritten.substitute_vars(
                        {name: values[name]}  # type: ignore[dict-item]
                    )
            if rewritten.var_names() <= set(copy_vars):
                copy_constraints.append(rewritten)

    copy_space = IntSet(tuple(copy_vars), [Conjunction(copy_constraints)])
    copy_reads = [SOURCE_DATA] + sorted(
        {
            call.name
            for c in copy_space.single_conjunction
            for call in c.uf_calls()
        }
        | ({PERMUTATION} if (use_perm_lookup and not pos_stateful) else set())
        | ({"__pos__"} if pos_stateful else set())
    )
    reads_enforced = any(
        uf in enforced_ufs or uf in insert_ufs for uf in copy_reads
    )
    copy_phase = PH_COPY if (reads_enforced or searches) else PH_POP
    if copy_phase == PH_POP:
        notes.append("copy fused candidate: same phase as UF population")
    else:
        notes.append(
            "copy must follow quantifier enforcement (index property "
            "blocks fusion with population)"
        )
    comp.new_stmt(
        f"{DEST_DATA}[{pexpr(copy_kd_expr)}] = "
        f"{SOURCE_DATA}[{pexpr(src_data_expr)}]",
        copy_space,
        reads=copy_reads,
        writes=[DEST_DATA],
        phase=copy_phase,
    )

    # Order statements by phase (stable), then re-number default schedules.
    ordered = sorted(comp.stmts, key=lambda s: s.phase)
    comp.replace_stmts([])
    comp._counter = 0
    for stmt in ordered:
        comp.add_stmt(
            Stmt(
                stmt.text,
                stmt.space,
                None,
                stmt.reads,
                stmt.writes,
                "",
                stmt.phase,
            )
        )

    returns = tuple(
        sorted(set(uf_map[u] for u in dst.index_ufs()))
        + sorted(sym_sources)
        + [DEST_DATA]
    )

    _mark = _phase("build", _mark, statements=len(comp.stmts))

    # ------------------------------------------------------------------
    # Optimization pipeline (Section 3.3).
    # ------------------------------------------------------------------
    stmts_before_optimize = len(comp.stmts)
    if optimize:
        removed = eliminate_redundant_statements(comp)
        if removed:
            notes.append(f"removed {len(removed)} duplicate statement(s)")
        dead = dead_code_elimination(comp, live_out=returns)
        if any(PERMUTATION in s.writes for s in dead):
            notes.append("permutation P eliminated as dead code")
        if dead:
            notes.append(
                f"dead code elimination removed {len(dead)} statement(s)"
            )
        fused = apply_all_fusion(comp)
        if fused:
            notes.append(f"fused {fused} statement(s) into shared loops")
    if binary_search:
        from .optimize import rewrite_linear_search

        rewritten = rewrite_linear_search(comp, symtab)
        if rewritten:
            notes.append(
                "linear search over monotonic UF replaced by binary search"
            )
    _mark = _phase(
        "optimize",
        _mark,
        stmts_before=stmts_before_optimize,
        stmts_after=len(comp.stmts),
        eliminated=stmts_before_optimize - len(comp.stmts),
    )

    scalar_source = comp.codegen_function(params, returns, symtab)
    c_source = comp.codegen(symtab, lang="c")

    source = scalar_source
    vector_stats = None
    if backend == "numpy":
        lowering = comp.codegen_function_numpy(params, returns, symtab)
        source = lowering.source
        vector_stats = {
            "vectorized_nests": lowering.vectorized_nests,
            "scalar_nests": lowering.scalar_nests,
        }
        notes.append(
            f"numpy backend: {lowering.vectorized_nests} vectorized nest(s), "
            f"{lowering.scalar_nests} scalar fallback nest(s)"
        )
        notes.extend(f"numpy backend: {n}" for n in lowering.notes)
    _phase(
        "codegen",
        _mark,
        span_name="lower",
        backend=backend,
        **(vector_stats or {}),
    )

    return SynthesizedConversion(
        name=fn_name,
        src_format=src.name,
        dst_format=dst.name,
        computation=comp,
        params=tuple(params),
        returns=returns,
        source=source,
        c_source=c_source,
        symtab=symtab,
        uf_output_map=uf_output_map,
        notes=notes,
        backend=backend,
        scalar_source=scalar_source,
        vector_stats=vector_stats,
    )
