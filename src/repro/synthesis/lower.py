"""Lowering stage: optimized computation → backend source.

The scalar Python lowering is always generated (it feeds differential
testing, backend fallbacks, and the disk-cache payload); the active
backend's :meth:`~repro.backends.Backend.lower` hook then produces the
executable source — which for the scalar backend is the scalar source
itself.  The display C rendering is *not* generated here: it is lazy on
:attr:`~repro.synthesis.SynthesizedConversion.c_source`, so conversions
whose consumers never ask for it pay nothing.
"""

from __future__ import annotations

from repro.backends import Backend
from repro.pipeline.artifacts import BuiltComputation, LoweredSource


def lower_stage(
    built: BuiltComputation, backend: Backend, notes: list[str]
) -> LoweredSource:
    """Lower the built computation for ``backend``."""
    params = list(built.params)
    returns = list(built.returns)
    scalar_source = built.comp.codegen_function(
        params, returns, built.symtab
    )
    lowering = backend.lower(
        built.comp,
        params,
        returns,
        built.symtab,
        scalar_source=scalar_source,
    )
    if lowering.vector_stats is not None:
        stats = lowering.vector_stats
        notes.append(
            f"{backend.name} backend: {stats['vectorized_nests']} "
            f"vectorized nest(s), {stats['scalar_nests']} scalar fallback "
            "nest(s)"
        )
    notes.extend(f"{backend.name} backend: {n}" for n in lowering.notes)
    return LoweredSource(
        backend=backend.name,
        source=lowering.source,
        scalar_source=scalar_source,
        vector_stats=lowering.vector_stats,
        notes=list(lowering.notes),
    )
