"""Post-synthesis optimizations beyond the standard SPF passes.

The headline rewrite here is the Figure 3 optimization: the naive COO→DIA
copy loop scans every diagonal ``d`` looking for ``off(d) + i == j`` — a
linear search implied by the composed relation's constraints.  Because
``off`` carries a strictly monotonic universal quantifier, the search can be
replaced by a binary search, which the paper shows recovers most of the gap
to TACO.
"""

from __future__ import annotations

from repro.ir import Conjunction, Eq, IntSet, UFCall, Var
from repro.spf import Computation, Stmt, SymbolTable
from repro.spf.codegen.printers import print_expr


def _find_search_pattern(stmt: Stmt):
    """Detect a loop variable that linearly searches a monotonic UF.

    Looks for a tuple variable ``v`` whose only non-bound constraint is an
    equality ``uf(v) = expr`` with ``v`` absent from ``expr``.  Returns
    ``(v, uf_name, expr)`` or None.
    """
    conj = stmt.space.single_conjunction
    for v in stmt.space.tuple_vars:
        if conj.defining_equality(v) is not None:
            continue
        candidates = []
        ok = True
        for c in conj.constraints_on(v):
            if not isinstance(c, Eq):
                # bounds (Geq) are fine; anything else disqualifies
                from repro.ir import bounds_on_var

                kind, _ = bounds_on_var(c, v)
                if kind not in ("lower", "upper"):
                    ok = False
                continue
            calls = [
                (atom, coef)
                for atom, coef in c.expr.terms
                if isinstance(atom, UFCall)
                and any(v in a.var_names() for a in atom.args)
            ]
            if len(calls) != 1:
                ok = False
                continue
            call, coef = calls[0]
            if coef not in (1, -1) or call.args != (Var(v).as_expr(),):
                ok = False
                continue
            rest = c.expr.without(call)
            if rest.mentions_var(v):
                ok = False
                continue
            target = -rest if coef == 1 else rest
            candidates.append((call.name, target))
        if ok and len(candidates) == 1:
            return v, candidates[0][0], candidates[0][1]
    return None


def rewrite_linear_search(comp: Computation, symtab: SymbolTable) -> int:
    """Replace linear-search loops over monotonic UFs with binary search.

    Returns the number of statements rewritten.  The rewritten statement
    drops the searched variable from its iteration space and computes it
    with ``BSEARCH`` (provided by the runtime namespace), guarded against
    absence for safety.
    """
    rewritten = 0
    new_stmts = []
    for stmt in comp.stmts:
        pattern = _find_search_pattern(stmt)
        if pattern is None:
            new_stmts.append(stmt)
            continue
        var, uf, target = pattern
        conj = stmt.space.single_conjunction
        keep = Conjunction(
            c for c in conj.constraints if not c.mentions_var(var)
        )
        new_space = IntSet(
            tuple(v for v in stmt.space.tuple_vars if v != var), [keep]
        )
        target_text = print_expr(target, symtab, "py")
        text = (
            f"{var} = BSEARCH({uf}, {target_text})\n"
            f"if {var} >= 0:\n"
            f"    {stmt.text}"
        )
        assert stmt.schedule is not None
        from repro.spf import Schedule

        schedule = Schedule.default(
            stmt.schedule.static_at(0), new_space.tuple_vars
        )
        new_stmts.append(
            Stmt(
                text,
                new_space,
                schedule,
                stmt.reads,
                stmt.writes,
                stmt.name,
                stmt.phase,
            )
        )
        rewritten += 1
    if rewritten:
        comp.replace_stmts(new_stmts)
    return rewritten
