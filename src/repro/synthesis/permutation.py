"""Permutation realization and the reorderings it unlocks.

The build stage delegates here for everything concerning the permutation
``P`` inserted by the paper's step 1: detecting when the lexicographic
reordering reduces to a stable bucket sort (and when that sort can be
inlined into plain index arrays), emitting the permutation population
statements, strengthening min/max reductions to plain assignments when
positions ascend, and aliasing a prefix-sum-shaped UF directly to the
counting sort's prefix array.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.formats.descriptor import FormatDescriptor
from repro.ir import Conjunction, Expr, Geq, IntSet, Var
from repro.pipeline.artifacts import CaseMatch
from repro.spf import Computation

from .compose import _bare_var_name, _dense_var_definitions
from .conversion import (
    PERMUTATION,
    PH_ALLOC,
    PH_PERM,
    PH_PERMSYM,
)

#: Expression printer type the build stage passes down.
ExprPrinter = Callable[[Expr], str]


def bucket_permutation_spec(
    src: FormatDescriptor, dst: FormatDescriptor
) -> Optional[tuple[str, Expr]]:
    """Detect when the permutation reduces to a stable bucket sort.

    Both orderings must be plain lexicographic; with the destination key
    ``(c, rest...)``, removing ``c`` from the source key must leave exactly
    ``rest`` — then source order already sorts entries within each value of
    ``c`` and a stable counting sort by ``c`` realizes the destination
    order.  Returns ``(bucket_dense_var, nbuckets_expr)`` or None.
    """
    if src.ordering is None or dst.ordering is None:
        return None
    rename = dict(zip(src.dense_vars, dst.dense_vars))
    src_key = [
        _bare_var_name(k.rename_vars(rename)) for k in src.ordering.key_exprs
    ]
    dst_key = [_bare_var_name(k) for k in dst.ordering.key_exprs]
    if any(v is None for v in src_key + dst_key):
        return None
    if set(src_key) != set(dst_key) or len(dst_key) < 2:
        return None
    bucket = dst_key[0]
    if [v for v in src_key if v != bucket] != dst_key[1:]:
        return None
    # Bucket count: the dense bound of the bucket coordinate in the
    # destination map's range (e.g. 0 <= j < NC gives NC buckets).
    dense_range = dst.sparse_to_dense.range(strict=False)
    uppers = dense_range.single_conjunction.upper_bounds(bucket)
    if not uppers:
        return None
    back = dict(zip(dst.dense_vars, src.dense_vars))
    return back.get(bucket, bucket), uppers[0] + 1


def emit_permutation(
    comp: Computation,
    src: FormatDescriptor,
    dst_r: FormatDescriptor,
    match: CaseMatch,
    *,
    bucket_spec: Optional[tuple[str, Expr]],
    inline_bucket: bool,
    pexpr: ExprPrinter,
    notes: list[str],
) -> bool:
    """Emit the permutation population statements; returns ``pos_stateful``.

    With ``inline_bucket`` the counting sort is maintained directly in
    index arrays and positions are produced statefully (``P_fill``) —
    ``match.pos_definition`` is cleared.  Otherwise a structure call
    (``LexBucketPermutation`` / ``OrderedList``) is populated over the
    source space.
    """
    if not match.emit_perm:
        return False
    empty_space = IntSet(())
    src_space = match.src_space
    dense_exprs = match.dense_exprs
    if inline_bucket:
        # Specialize *and inline* the permutation: a stable counting sort
        # over the leading destination key component, maintained directly in
        # index arrays (no per-element structure calls).
        assert bucket_spec is not None
        bucket_var, nbuckets = bucket_spec
        bexpr = pexpr(dense_exprs[bucket_var])
        comp.new_stmt(
            f"P_count = [0] * ({pexpr(nbuckets + 1)})",
            empty_space,
            writes=["P_count"],
            phase=PH_ALLOC,
        )
        comp.new_stmt(
            f"P_count[{bexpr} + 1] += 1",
            src_space,
            reads=sorted(src.index_ufs()),
            writes=["P_count"],
            phase=PH_PERM,
        )
        prefix_space = IntSet(
            ("x",),
            [Conjunction([Geq(Var("x") - 1), Geq(nbuckets - Var("x"))])],
        )
        comp.new_stmt(
            "P_count[x] = P_count[x] + P_count[x - 1]",
            prefix_space,
            reads=["P_count"],
            writes=["P_count"],
            phase=PH_PERMSYM,
        )
        comp.new_stmt(
            "P_fill = list(P_count)",
            empty_space,
            reads=["P_count"],
            writes=["P_fill"],
            phase=PH_PERMSYM,
        )
        match.pos_definition = None
        notes.append(
            "lexicographic reordering realized as an inlined stable bucket "
            f"sort over {bucket_var} ({nbuckets} buckets)"
        )
        return True
    if bucket_spec is not None:
        dense_order = list(src.dense_vars)
        bucket_var, nbuckets = bucket_spec
        which = dense_order.index(bucket_var)
        comp.new_stmt(
            f"{PERMUTATION} = LexBucketPermutation({pexpr(nbuckets)}, "
            f"{which}, {len(dense_order)})",
            empty_space,
            writes=[PERMUTATION],
            phase=PH_ALLOC,
        )
        insert_args = ", ".join(pexpr(dense_exprs[v]) for v in dense_order)
        comp.new_stmt(
            f"{PERMUTATION}.insert({insert_args})",
            src_space,
            reads=sorted(src.index_ufs()),
            writes=[PERMUTATION],
            phase=PH_PERM,
        )
        notes.append(
            "lexicographic reordering realized as a stable bucket sort: "
            f"P = LexBucketPermutation({nbuckets}, which={which})"
        )
        return False
    dense_order = list(src.dense_vars)
    if dst_r.ordering is not None:
        # Lambda parameters follow the dense-space order used at insert
        # time; the key body is the destination's ordering key rewritten
        # over the source's dense variable names (positional match).
        to_src = dict(zip(dst_r.dense_vars, src.dense_vars))
        key_body = ", ".join(
            pexpr(k.rename_vars(to_src)) for k in dst_r.ordering.key_exprs
        )
        lambda_params = ", ".join(dense_order)
        key_text = f"lambda {lambda_params}: ({key_body},)"
        op = "<"
    else:
        key_text = "None"
        op = "<"
    unique_text = (
        ", unique=True"
        if dst_r.ordering is not None and dst_r.ordering.collapse_ties
        else ""
    )
    comp.new_stmt(
        f"{PERMUTATION} = OrderedList({len(dense_order)}, 1, "
        f"key={key_text}, op=\"{op}\"{unique_text})",
        empty_space,
        writes=[PERMUTATION],
        phase=PH_ALLOC,
    )
    insert_args = ", ".join(pexpr(dense_exprs[v]) for v in dense_order)
    comp.new_stmt(
        f"{PERMUTATION}.insert({insert_args})",
        src_space,
        reads=sorted(src.index_ufs()),
        writes=[PERMUTATION],
        phase=PH_PERM,
    )
    notes.append(
        f"P = OrderedList({len(dense_order)}, 1, key={key_text}, op='<')"
    )
    return False


def strengthen_reductions(
    src: FormatDescriptor,
    match: CaseMatch,
    *,
    bucket_spec: Optional[tuple[str, Expr]],
    optimize: bool,
    notes: list[str],
) -> None:
    """Degrade min/max reductions to assignments when positions ascend.

    The paper's "loop fusion and dead code elimination make it a simple
    assignment": when destination positions ascend along the source
    traversal — the identity-position case — each min/max reduction slot is
    last written by its extremal value, so the reduction degrades to a
    plain assignment.  With a stable bucket permutation the same holds
    within each bucket for slots indexed by the bucket coordinate alone.
    """
    position_var = match.position_var
    ascending_positions = optimize and position_var is not None and (
        match.identity_position or match.preserve_order
    )
    if ascending_positions:
        for plan in match.plans:
            if plan.kind == "max" and position_var is not None and any(
                position_var in e.var_names()
                for e in list(plan.args) + [plan.value]
            ):
                plan.kind = "scatter"
                notes.append(
                    f"{plan.uf}: max reduction strengthened to assignment "
                    "(positions ascend along the source traversal)"
                )
    elif optimize and bucket_spec is not None and position_var is not None:
        # With a stable bucket permutation, positions ascend *within each
        # bucket*: a max reduction whose target slot is a function of the
        # bucket coordinate alone is last-written by its maximum.  The
        # bucket coordinate may appear as any of its source-side
        # definitions (the tuple variable or the coordinate UF).
        bucket_defs = _dense_var_definitions(src).get(bucket_spec[0], [])
        for plan in match.plans:
            if (
                plan.kind == "max"
                and len(plan.args) == 1
                and any(
                    (plan.args[0] - d).is_constant() for d in bucket_defs
                )
                and position_var in plan.value.var_names()
            ):
                plan.kind = "scatter"
                notes.append(
                    f"{plan.uf}: max reduction strengthened to assignment "
                    "(positions ascend within each bucket)"
                )


def alias_prefix_ufs(
    comp: Computation,
    src: FormatDescriptor,
    match: CaseMatch,
    *,
    bucket_spec: Optional[tuple[str, Expr]],
    pos_stateful: bool,
    notes: list[str],
) -> set[str]:
    """Alias prefix-shaped UFs to the inlined counting sort's prefix array.

    A UF populated as ``uf[bucket + 1] = position + 1`` is exactly the
    counting sort's prefix array — ``uf[b]`` is the start of bucket ``b``
    — so the per-element stores and the monotonic fix-up for empty buckets
    collapse into one array copy taken after the prefix pass.
    """
    aliased_ufs: set[str] = set()
    position_var = match.position_var
    if not (pos_stateful and bucket_spec is not None and position_var):
        return aliased_ufs
    empty_space = IntSet(())
    bucket_defs = _dense_var_definitions(src).get(bucket_spec[0], [])
    for plan in list(match.plans):
        if (
            plan.kind == "scatter"
            and len(plan.args) == 1
            and any((plan.args[0] - d) == 1 for d in bucket_defs)
            and (plan.value - Var(position_var)) == 1
        ):
            match.plans.remove(plan)
            comp.new_stmt(
                f"{plan.uf} = list(P_count)",
                empty_space,
                reads=["P_count"],
                writes=[plan.uf],
                phase=PH_PERMSYM,
            )
            aliased_ufs.add(plan.uf)
            notes.append(
                f"{plan.uf}: aliased to the counting sort's prefix "
                "array (per-element stores and monotonic fix-up "
                "eliminated)"
            )
    return aliased_ufs
