"""Sizing analysis for the build stage.

Two questions the build stage must answer before it can allocate:
where does each destination-only size symbol come from (an
insert-populated UF's length, or ``len(P)``), and how large is the
destination data array.
"""

from __future__ import annotations

from typing import Sequence

from repro.formats.descriptor import FormatDescriptor
from repro.ir import Conjunction, Expr, Sym, Var
from repro.pipeline.artifacts import CaseMatch

from .compose import _is_bare_var
from .conversion import PERMUTATION, SynthesisError


def derive_size_symbols(
    src: FormatDescriptor,
    dst_r: FormatDescriptor,
    conj: Conjunction,
    match: CaseMatch,
    insert_ufs: Sequence[str],
) -> dict[str, str]:
    """Map each destination-only size symbol to the object that yields it.

    A symbol bounding an insert-populated UF's domain is that UF's length;
    ``len(P)`` counts distinct destination positions, so it can only stand
    in for a symbol that bounds the *position-indexed* arrays: some
    unknown UF must be applied to the bare position variable and carry
    this symbol as its domain bound (CSR's ``col2(k)`` with domain NNZ;
    BCSR's ``bcol(bk)`` with domain NB).  ELL's width ``W`` has no such
    witness and is rejected.
    """
    derived_syms = sorted(dst_r.size_symbols() - set(src.size_symbols()))
    sym_sources: dict[str, str] = {}
    position_var = match.position_var

    def counts_positions(symbol: str) -> bool:
        if position_var is None:
            return False
        for c in conj.constraints:
            for call in c.uf_calls():
                if (
                    call.name in match.unknown_ufs
                    and call.args == (Var(position_var).as_expr(),)
                ):
                    domain = dst_r.uf_domains.get(call.name)
                    if domain is not None and symbol in domain.sym_names():
                        return True
        return False

    for sym in derived_syms:
        for uf in insert_ufs:
            domain = dst_r.uf_domains.get(uf)
            if domain is not None and sym in domain.sym_names():
                sym_sources[sym] = uf
                break
        else:
            if match.use_perm_lookup and counts_positions(sym):
                sym_sources[sym] = PERMUTATION
            else:
                raise SynthesisError(
                    f"cannot derive destination size symbol {sym!r} from "
                    "the source format"
                )
    return sym_sources


def dest_data_size(
    src: FormatDescriptor,
    dst_r: FormatDescriptor,
    conj: Conjunction,
    match: CaseMatch,
    sym_sources: dict[str, str],
) -> Expr:
    """Size of the destination data array."""
    kd_expr = match.kd_expr
    position_var = match.position_var
    if (
        position_var is not None
        and _is_bare_var(kd_expr)
        and position_var in kd_expr.var_names()
    ):
        # Positional layout: one slot per nonzero.
        nnz_sym = None
        for candidate in ("NNZ",):
            if candidate in (src.size_symbols() | set(sym_sources)):
                nnz_sym = candidate
        if nnz_sym is None:
            raise SynthesisError("cannot size the destination data array")
        return Sym(nnz_sym).as_expr()
    # Strided layout (DIA, BCSR): substitute each variable's maximum.
    # A variable whose only upper bounds involve UF calls (BCSR's
    # ``bk < browptr(bi+1)``) is bounded instead by the domain of an
    # unknown UF indexed by it (``bcol``'s domain gives ``bk < NB``).
    substitution: dict = {}
    dst_conj = dst_r.sparse_to_dense.domain(strict=False).single_conjunction
    for v in kd_expr.var_names():
        uppers = [u for u in dst_conj.upper_bounds(v) if not u.uf_calls()]
        if not uppers:
            for c in conj.constraints:
                for call in c.uf_calls():
                    if (
                        call.name in match.unknown_ufs
                        and call.args == (Var(v).as_expr(),)
                    ):
                        domain = dst_r.uf_domains.get(call.name)
                        if domain is None:
                            continue
                        dvar = domain.tuple_vars[0]
                        uppers = domain.single_conjunction.upper_bounds(dvar)
                        if uppers:
                            break
                if uppers:
                    break
        if not uppers:
            raise SynthesisError(
                f"cannot bound {v!r} to size the destination data array"
            )
        substitution[Var(v)] = uppers[0]
    return kd_expr.substitute(substitution) + 1
