"""Inspector/executor tandem optimization.

The paper's introduction argues for synthesizing conversions *into SPF*
precisely so that "by directly synthesizing the sparse format code to SPF
and expressing the original computation in SPF, both can be optimized in
tandem".  This module demonstrates that payoff.

Given a conversion ``src → dst`` followed by an executor kernel over the
destination format, :func:`tandem` builds both pipelines:

* the **naive** pipeline runs the conversion inspector, then the
  destination-format kernel on its outputs;
* the **tandem-optimized** pipeline retargets the executor through the
  composed sparse-to-dense maps (the destination's dense coordinates equal
  the source's, so the kernel's statement is re-expressed over the *source*
  iteration space, reading the source data array) and then runs dead code
  elimination on the combined computation — for a single kernel
  application this removes every conversion statement, collapsing the
  pipeline to "run the kernel on the source format".

The collapse is the formal version of the intro's observation that a
conversion only pays off when the computation repeats enough times; the
breakeven analysis lives in :mod:`repro.evalharness.amortization`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.formats.descriptor import FormatDescriptor
from repro.kernels.executor_gen import synthesize_kernel
from repro.runtime.executor import compile_inspector
from repro.spf import Computation, Stmt, SymbolTable
from repro.spf.transforms import dead_code_elimination

from .engine import synthesize


@dataclass
class TandemResult:
    """The combined pipeline in naive and tandem-optimized forms."""

    src_format: str
    dst_format: str
    kernel_kind: str
    naive_source: str
    optimized_source: str
    params: tuple[str, ...]
    returns: tuple[str, ...]
    conversion_statements_removed: int
    conversion_eliminated: bool
    #: Backend the conversion inspector was lowered with ("python"/"numpy").
    backend: str = "python"
    notes: list[str] = field(default_factory=list)
    _naive: object = None
    _optimized: object = None

    def run_naive(self, **inputs):
        if self._naive is None:
            self._naive = compile_inspector(
                "tandem_naive", self.naive_source, backend=self.backend
            )
        return self._naive(*[inputs[p] for p in self.params])

    def run_optimized(self, **inputs):
        if self._optimized is None:
            # The optimized pipeline is pure scalar code (the conversion is
            # eliminated), but compile it in the same namespace for parity.
            self._optimized = compile_inspector(
                "tandem_optimized", self.optimized_source, backend=self.backend
            )
        return self._optimized(*[inputs[p] for p in self.params])


def _rename_function(source: str, old: str, new: str) -> str:
    return source.replace(f"def {old}(", f"def {new}(", 1)


def _retarget_text(text: str) -> str:
    """Rewrite a destination-kernel body to read the source data array."""
    return re.sub(r"\bAdata\b", "Asrc", text)


def tandem(
    src: FormatDescriptor,
    dst: FormatDescriptor,
    kernel_kind: str = "spmv",
    *,
    backend: str = "python",
) -> TandemResult:
    """Build and optimize conversion + kernel across the boundary.

    ``backend`` selects the conversion inspector's lowering for the naive
    pipeline; the tandem-optimized pipeline eliminates the conversion, so
    its code is backend-independent.
    """
    conversion = synthesize(src, dst, backend=backend)
    dst_kernel = synthesize_kernel(dst, kernel_kind)
    src_kernel = synthesize_kernel(src, kernel_kind)
    notes: list[str] = []

    kernel_extra = [
        p
        for p in dst_kernel.params
        if p not in set(conversion.params)
        and p != "Adata"
        and conversion.uf_output_map.get(p, p) not in conversion.returns
        and p not in dst.derived_size_symbols()
    ]
    params = tuple(list(conversion.params) + kernel_extra)
    returns = dst_kernel.returns

    # ------------------------------------------------------------------
    # Naive pipeline: convert, then run the destination kernel.
    # ------------------------------------------------------------------
    uf_map = conversion.uf_output_map
    kernel_args = []
    for p in dst_kernel.params:
        generated = uf_map.get(p, p)
        if p == "Adata":
            kernel_args.append("__conv['Adst']")
        elif generated in conversion.returns:
            kernel_args.append(f"__conv[{generated!r}]")
        else:
            kernel_args.append(p)
    naive_source = "\n".join(
        [
            _rename_function(conversion.source, conversion.name, "__convert"),
            _rename_function(dst_kernel.source, dst_kernel.name, "__kernel"),
            f"def tandem_naive({', '.join(params)}):",
            f"    __conv = __convert({', '.join(conversion.params)})",
            f"    return __kernel({', '.join(kernel_args)})",
        ]
    )

    # ------------------------------------------------------------------
    # Tandem optimization on the combined SPF computation.
    # ------------------------------------------------------------------
    combined = Computation("tandem_core")
    conversion_names = []
    for stmt in conversion.computation.stmts:
        added = combined.add_stmt(
            Stmt(stmt.text, stmt.space, None, stmt.reads, stmt.writes,
                 "", stmt.phase)
        )
        conversion_names.append(added.name)
    last_phase = max((s.phase for s in combined.stmts), default=0) + 1
    assert src_kernel.computation is not None
    for stmt in src_kernel.computation.stmts:  # type: ignore[attr-defined]
        combined.add_stmt(
            Stmt(
                _retarget_text(stmt.text),
                stmt.space,
                None,
                [("Asrc" if r == "Adata" else r) for r in stmt.reads],
                stmt.writes,
                "",
                last_phase,
            )
        )
    notes.append(
        f"executor retargeted from {dst.name} to {src.name} via the "
        "composed sparse-to-dense maps (dense coordinates agree)"
    )

    removed = dead_code_elimination(combined, live_out=returns)
    removed_conversion = sum(
        1 for s in removed if s.name in conversion_names
    )
    surviving_conversion = sum(
        1 for s in combined.stmts if s.name in conversion_names
    )
    conversion_eliminated = surviving_conversion == 0
    if conversion_eliminated:
        notes.append(
            f"dead code elimination removed all {removed_conversion} "
            "conversion statements: the destination format never "
            "materializes for a single kernel application"
        )
    else:
        notes.append(
            f"{surviving_conversion} conversion statement(s) remain live"
        )

    symtab = SymbolTable(
        arrays=(
            set(src.index_ufs())
            | set(dst.index_ufs())
            | {"Asrc", "Adst", "Adata", "x", "y"}
        ),
        functions={"MORTON", "MORTON2", "MORTON3", "BSEARCH"},
        objects={"P"},
    )
    optimized_source = combined.codegen_function(
        list(params), list(returns), symtab,
        preamble=list(src_kernel.preamble),
    )
    optimized_source = _rename_function(
        optimized_source, "tandem_core", "tandem_optimized"
    )

    return TandemResult(
        src_format=src.name,
        dst_format=dst.name,
        kernel_kind=kernel_kind,
        naive_source=naive_source,
        optimized_source=optimized_source,
        params=params,
        returns=returns,
        conversion_statements_removed=removed_conversion,
        conversion_eliminated=conversion_eliminated,
        backend=backend,
        notes=notes,
    )
