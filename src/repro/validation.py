"""Differential testing of synthesized conversions.

A randomized cross-checking harness: generate matrices, push them through
every synthesizable conversion path (direct, round-trip, and two-step
chains), and compare the dense images.  Used by the test suite, by
``python -m repro selftest``, and handy when developing a new format
descriptor — one call exercises a descriptor against the whole library.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from repro import convert, dense_equal
from repro.runtime import COOMatrix
from repro.synthesis import SynthesisError

DEFAULT_TARGETS = ("CSR", "CSC", "DIA", "MCOO", "SCOO", "BCSR")


@dataclass
class DifferentialReport:
    """Outcome of a differential-testing run."""

    trials: int
    conversions_checked: int
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.failures)} FAILURES"
        lines = [
            f"differential test: {self.trials} matrices, "
            f"{self.conversions_checked} conversions checked — {status}"
        ]
        lines.extend(f"  FAIL {f}" for f in self.failures)
        return "\n".join(lines)


def random_matrix(rng: random.Random, max_dim: int = 16) -> COOMatrix:
    """A random sparse matrix with occasional degenerate shapes."""
    nrows = rng.randint(1, max_dim)
    ncols = rng.randint(1, max_dim)
    ncells = nrows * ncols
    nnz = rng.randint(0, min(ncells, 3 * max_dim))
    cells = rng.sample(range(ncells), nnz)
    dense = [[0.0] * ncols for _ in range(nrows)]
    for cell in cells:
        dense[cell // ncols][cell % ncols] = round(rng.uniform(-9, 9), 3) or 1.0
    return COOMatrix.from_dense(dense)


def differential_test(
    trials: int = 20,
    *,
    targets: Sequence[str] = DEFAULT_TARGETS,
    seed: int = 0,
    chains: bool = True,
) -> DifferentialReport:
    """Run the harness; every conversion must preserve the dense image."""
    rng = random.Random(seed)
    report = DifferentialReport(trials=trials, conversions_checked=0)

    for trial in range(trials):
        coo = random_matrix(rng)
        reference = coo.to_dense()
        converted: dict[str, object] = {}

        for target in targets:
            label = f"trial {trial}: SCOO->{target} ({coo})"
            try:
                out = convert(coo, target)
            except SynthesisError as err:
                report.failures.append(f"{label}: synthesis error: {err}")
                continue
            report.conversions_checked += 1
            try:
                out.check()
            except ValueError as err:
                report.failures.append(f"{label}: invariant violation: {err}")
                continue
            if not dense_equal(out.to_dense(), reference):
                report.failures.append(f"{label}: dense image differs")
                continue
            converted[target] = out

        if not chains:
            continue
        # Second hop: from each converted container to a rotated target.
        for index, (fmt, container) in enumerate(sorted(converted.items())):
            target = list(targets)[(index + 1) % len(targets)]
            if target == fmt:
                continue
            label = f"trial {trial}: {fmt}->{target} (chained)"
            try:
                out = convert(container, target)
            except SynthesisError as err:
                report.failures.append(f"{label}: synthesis error: {err}")
                continue
            report.conversions_checked += 1
            if not dense_equal(out.to_dense(), reference):
                report.failures.append(f"{label}: dense image differs")

    return report
