"""Differential testing of synthesized conversions.

A randomized cross-checking harness: generate matrices, push them through
every synthesizable conversion path (direct, round-trip, and two-step
chains), and compare the dense images.  Used by the test suite, by
``python -m repro selftest``, and handy when developing a new format
descriptor — one call exercises a descriptor against the whole library.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from repro import container_to_env, convert, dense_equal
from repro.formats import get_format
from repro.runtime import COOMatrix, COOTensor3D
from repro.synthesis import SynthesisError, synthesize

DEFAULT_TARGETS = ("CSR", "CSC", "DIA", "MCOO", "SCOO", "BCSR")


@dataclass
class DifferentialReport:
    """Outcome of a differential-testing run."""

    trials: int
    conversions_checked: int
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.failures)} FAILURES"
        lines = [
            f"differential test: {self.trials} matrices, "
            f"{self.conversions_checked} conversions checked — {status}"
        ]
        lines.extend(f"  FAIL {f}" for f in self.failures)
        return "\n".join(lines)


def random_matrix(rng: random.Random, max_dim: int = 16) -> COOMatrix:
    """A random sparse matrix with occasional degenerate shapes."""
    nrows = rng.randint(1, max_dim)
    ncols = rng.randint(1, max_dim)
    ncells = nrows * ncols
    nnz = rng.randint(0, min(ncells, 3 * max_dim))
    cells = rng.sample(range(ncells), nnz)
    dense = [[0.0] * ncols for _ in range(nrows)]
    for cell in cells:
        dense[cell // ncols][cell % ncols] = round(rng.uniform(-9, 9), 3) or 1.0
    return COOMatrix.from_dense(dense)


def differential_test(
    trials: int = 20,
    *,
    targets: Sequence[str] = DEFAULT_TARGETS,
    seed: int = 0,
    chains: bool = True,
    backend: str = "python",
) -> DifferentialReport:
    """Run the harness; every conversion must preserve the dense image."""
    rng = random.Random(seed)
    report = DifferentialReport(trials=trials, conversions_checked=0)

    for trial in range(trials):
        coo = random_matrix(rng)
        reference = coo.to_dense()
        converted: dict[str, object] = {}

        for target in targets:
            label = f"trial {trial}: SCOO->{target} ({coo})"
            try:
                out = convert(coo, target, backend=backend)
            except SynthesisError as err:
                report.failures.append(f"{label}: synthesis error: {err}")
                continue
            report.conversions_checked += 1
            try:
                out.check()
            except ValueError as err:
                report.failures.append(f"{label}: invariant violation: {err}")
                continue
            if not dense_equal(out.to_dense(), reference):
                report.failures.append(f"{label}: dense image differs")
                continue
            converted[target] = out

        if not chains:
            continue
        # Second hop: from each converted container to a rotated target.
        for index, (fmt, container) in enumerate(sorted(converted.items())):
            target = list(targets)[(index + 1) % len(targets)]
            if target == fmt:
                continue
            label = f"trial {trial}: {fmt}->{target} (chained)"
            try:
                out = convert(container, target, backend=backend)
            except SynthesisError as err:
                report.failures.append(f"{label}: synthesis error: {err}")
                continue
            report.conversions_checked += 1
            if not dense_equal(out.to_dense(), reference):
                report.failures.append(f"{label}: dense image differs")

    return report


def random_tensor3d(rng: random.Random, max_dim: int = 8) -> COOTensor3D:
    """A random sorted 3-D COO tensor with occasional degenerate shapes."""
    ni, nj, nk = (rng.randint(1, max_dim) for _ in range(3))
    nnz = rng.randint(0, 3 * max_dim)
    seen = sorted(
        {
            (rng.randrange(ni), rng.randrange(nj), rng.randrange(nk))
            for _ in range(nnz)
        }
    )
    rows, cols, zs = ([list(axis) for axis in zip(*seen)] if seen
                      else ([], [], []))
    vals = [round(rng.uniform(-9, 9), 3) or 1.0 for _ in rows]
    return COOTensor3D((ni, nj, nk), rows, cols, zs, vals)


def _equivalence_containers(src: str, matrices):
    """Build ``src``-format containers from raw COO inputs.

    The source-only formats have no incoming conversion edges, so their
    containers come from the direct constructors (``ELLMatrix.from_dense``,
    ``CSFTensor.from_coo``); everything else goes through ``convert``.
    Shapes a format cannot represent (e.g. a BCSR block size that does not
    divide the dims) are skipped.
    """
    from repro.runtime.csf import CSFTensor
    from repro.runtime.matrices import ELLMatrix

    containers = []
    for tag, coo in matrices:
        try:
            if src in ("COO", "SCOO", "COO3D", "SCOO3D"):
                containers.append((tag, coo))
            elif src == "ELL":
                containers.append((tag, ELLMatrix.from_dense(coo.to_dense())))
            elif src == "CSF":
                containers.append((tag, CSFTensor.from_coo(coo)))
            else:
                containers.append((tag, convert(coo, src)))
        except (SynthesisError, ValueError, KeyError):
            continue
    return containers


def backend_equivalence_test(
    trials: int = 4,
    *,
    seed: int = 0,
    pairs: Sequence[tuple[str, str]] | None = None,
    backends: Sequence[str] = ("numpy",),
) -> DifferentialReport:
    """Assert non-reference lowerings are bit-identical to the scalar one.

    For every synthesizable conversion pair (or an explicit ``pairs``
    list), the scalar backend and each backend in ``backends`` run on the
    same randomized inputs — including an empty matrix, a 1x1 matrix, and
    unsorted COO with duplicate coordinates — and their materialized
    inspector output dicts must compare equal, element for element.  This
    is a stronger check than :func:`differential_test`'s dense-image
    comparison: padding, pointer arrays, and permutation outputs must all
    match exactly.  ``backends`` defaults to the numpy tier; pass
    ``("numpy", "c")`` to gate the compiled tier as well.
    """
    from repro.backends import get_backend
    from repro.planner import PLANNABLE_2D, PLANNABLE_3D

    rng = random.Random(seed)
    report = DifferentialReport(trials=trials, conversions_checked=0)

    matrices = [(f"rand{i}", random_matrix(rng)) for i in range(trials)]
    matrices.append(("empty", COOMatrix(4, 5, [], [], [])))
    matrices.append(("single", COOMatrix(1, 1, [0], [0], [7.0])))
    dup = COOMatrix(3, 3, [0, 0, 2, 2], [1, 1, 0, 0], [1.0, 2.0, 3.0, 4.0])
    tensors = [(f"tens{i}", random_tensor3d(rng)) for i in range(trials)]
    tensors.append(("empty3", COOTensor3D((2, 3, 4), [], [], [], [])))

    if pairs is None:
        pairs = [
            (src, dst)
            for names in (PLANNABLE_2D, PLANNABLE_3D)
            for src in names
            for dst in names
            if src != dst
        ]

    candidates = [b for b in backends if get_backend(b).name != "python"]
    for src, dst in pairs:
        try:
            scalar = synthesize(
                get_format(src), get_format(dst), backend="python"
            )
            others = [
                synthesize(get_format(src), get_format(dst), backend=b)
                for b in candidates
            ]
        except SynthesisError:
            continue
        inputs_3d = src in ("COO3D", "SCOO3D", "MCOO3", "CSF")
        cases = _equivalence_containers(
            src, tensors if inputs_3d else matrices
        )
        if src in ("COO", "SCOO"):
            cases.append(("dup", dup))
        for tag, container in cases:
            env = container_to_env(container)
            scalar_out = scalar(**{p: env[p] for p in scalar.params})
            for other in others:
                env = container_to_env(container)
                other_out = other(**{p: env[p] for p in other.params})
                report.conversions_checked += 1
                if scalar_out != other_out:
                    diff = [
                        k for k in scalar_out
                        if scalar_out[k] != other_out.get(k)
                    ]
                    report.failures.append(
                        f"{src}->{dst} on {tag} ({other.backend}): "
                        f"outputs differ in {diff}"
                    )
    return report
