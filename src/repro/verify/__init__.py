"""Correctness subsystem: the runtime validation gate and the fuzzer.

Two halves, one goal — no silent corruption:

* :mod:`repro.verify.gate` — the ``validate="off"|"inputs"|"full"`` knob
  threaded through :func:`repro.convert`, the planner, and the CLI.  It
  invokes every container's :meth:`check` (and, at ``"full"``, the dense
  round-trip) at the conversion boundary, turning malformed inputs into
  structured :class:`~repro.errors.ValidationError`\\ s instead of corrupt
  outputs.
* :mod:`repro.verify.fuzz` — the property-based differential fuzzer
  (``repro fuzz``): adversarial random inputs pushed through every
  synthesizable format pair x backend x optimize flag, cross-checked
  against dense semantics, the hand-written baselines, and the scalar
  lowering, with deterministic seeds, minimal-case shrinking, and a
  machine-readable failure report.
"""

from .gate import (
    VALIDATE_LEVELS,
    check_input,
    check_output,
    normalize_level,
)
from .fuzz import FuzzFailure, FuzzReport, fuzz, fuzz_random_formats

__all__ = [
    "FuzzFailure",
    "FuzzReport",
    "VALIDATE_LEVELS",
    "check_input",
    "check_output",
    "fuzz",
    "fuzz_random_formats",
    "normalize_level",
]
