"""Property-based differential fuzzing of the synthesized conversions.

The standing oracle for the synthesis stack: generate adversarial random
inputs (empty, single row/column, fully dense, dense rows, single
diagonal, tall/wide rectangles, power-law and banded structure, unsorted
orders, plus deliberately *malformed* duplicate/out-of-bounds/unsorted
containers) and push them through every synthesizable format pair x
lowering backend x optimize flag, cross-checking:

* **dense semantics** — the converted container's invariants and dense
  image versus the input's (via the ``validate="full"`` gate *and* an
  independent comparison against the generator's dense reference),
* **hand-written baselines** — exact output-array equality against the
  TACO/MKL/SPARSKIT-style reference converters where one exists,
* **backend agreement** — the numpy lowering's container must match the
  scalar lowering's, array for array,
* **the validation gate** — malformed inputs must raise
  :class:`~repro.errors.ValidationError`, never return a container or
  escape as a raw ``IndexError``.

Runs are deterministic per ``seed``; every failure is shrunk to a minimal
reproducing input (greedy nonzero removal + dimension trimming) and
reported machine-readably (:meth:`FuzzReport.to_dict`).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import repro.obs as obs
from repro.backends import backend_names, get_backend
from repro.errors import ValidationError
from repro.formats import get_format
from repro.runtime import (
    BCSRMatrix,
    COOMatrix,
    COOTensor3D,
    CSCMatrix,
    CSFTensor,
    CSRMatrix,
    DIAMatrix,
    ELLMatrix,
    MortonCOOMatrix,
    MortonCOOTensor3D,
    dense_equal,
)
from repro.synthesis import SynthesisError, synthesize_cached

Dense = list

#: Conversion sources/destinations covered by the fuzzer.  Sources span
#: every container with a descriptor; destinations are the formats
#: ``outputs_to_container`` can materialize.
#: Parameterized BCSR names ride along so the tuner's non-default block
#: sizes get the same differential coverage as the block-2 default.
SOURCES_2D = (
    "COO", "SCOO", "MCOO", "CSR", "CSC", "DIA", "BCSR", "BCSR3", "ELL",
)
DESTS_2D = ("SCOO", "MCOO", "CSR", "CSC", "DIA", "BCSR", "BCSR3", "BCSR4")
SOURCES_3D = ("COO3D", "SCOO3D", "MCOO3", "CSF")
DESTS_3D = ("SCOO3D", "MCOO3")

BCSR_BSIZE = 2  # the block size outputs_to_container materializes


# ----------------------------------------------------------------------
# Adversarial input generation


def _rand_val(rng: random.Random) -> float:
    return round(rng.uniform(-9, 9), 3) or 1.0


def _dense_from_cells(nrows, ncols, cells, rng) -> Dense:
    dense = [[0.0] * ncols for _ in range(nrows)]
    for i, j in cells:
        dense[i][j] = _rand_val(rng)
    return dense


def _gen_empty(rng):
    return _dense_from_cells(rng.randint(1, 6), rng.randint(1, 6), [], rng)


def _gen_single_cell(rng):
    nr, nc = rng.randint(1, 6), rng.randint(1, 6)
    return _dense_from_cells(
        nr, nc, [(rng.randrange(nr), rng.randrange(nc))], rng
    )


def _gen_single_row(rng):
    nc = rng.randint(1, 10)
    cells = [(0, j) for j in range(nc) if rng.random() < 0.6]
    return _dense_from_cells(1, nc, cells, rng)


def _gen_single_col(rng):
    nr = rng.randint(1, 10)
    cells = [(i, 0) for i in range(nr) if rng.random() < 0.6]
    return _dense_from_cells(nr, 1, cells, rng)


def _gen_fully_dense(rng):
    nr, nc = rng.randint(1, 5), rng.randint(1, 5)
    return _dense_from_cells(
        nr, nc, [(i, j) for i in range(nr) for j in range(nc)], rng
    )


def _gen_dense_rows(rng):
    nr, nc = rng.randint(2, 6), rng.randint(2, 8)
    cells = []
    for i in range(nr):
        if rng.random() < 0.5:  # a fully dense row
            cells.extend((i, j) for j in range(nc))
        elif rng.random() < 0.5:
            cells.append((i, rng.randrange(nc)))
    return _dense_from_cells(nr, nc, cells, rng)


def _gen_single_diagonal(rng):
    nr, nc = rng.randint(2, 8), rng.randint(2, 8)
    off = rng.randint(-(nr - 1), nc - 1)
    cells = [
        (i, i + off) for i in range(nr) if 0 <= i + off < nc
    ]
    return _dense_from_cells(nr, nc, cells, rng)


def _gen_tall(rng):
    nr, nc = rng.randint(6, 12), rng.randint(1, 3)
    cells = {
        (rng.randrange(nr), rng.randrange(nc))
        for _ in range(rng.randint(0, nr))
    }
    return _dense_from_cells(nr, nc, sorted(cells), rng)


def _gen_wide(rng):
    nr, nc = rng.randint(1, 3), rng.randint(6, 12)
    cells = {
        (rng.randrange(nr), rng.randrange(nc))
        for _ in range(rng.randint(0, nc))
    }
    return _dense_from_cells(nr, nc, sorted(cells), rng)


def _gen_power_law(rng):
    from repro.datagen import power_law

    nr, nc = rng.randint(4, 10), rng.randint(4, 10)
    coo = power_law(nr, nc, rng.randint(1, nr * 2),
                    seed=rng.randrange(1 << 30))
    return coo.to_dense()


def _gen_banded(rng):
    from repro.datagen import banded

    nr, nc = rng.randint(3, 9), rng.randint(3, 9)
    offsets = sorted(
        {rng.randint(-(nr - 1), nc - 1) for _ in range(rng.randint(1, 3))}
    )
    coo = banded(nr, nc, offsets, density=rng.choice((1.0, 0.6)),
                 seed=rng.randrange(1 << 30))
    return coo.to_dense()


def _gen_uniform(rng):
    nr, nc = rng.randint(2, 10), rng.randint(2, 10)
    ncells = nr * nc
    nnz = rng.randint(0, min(ncells, 24))
    cells = rng.sample(
        [(c // nc, c % nc) for c in range(ncells)], nnz
    )
    return _dense_from_cells(nr, nc, cells, rng)


CASE_KINDS_2D: tuple[tuple[str, Callable], ...] = (
    ("empty", _gen_empty),
    ("single_cell", _gen_single_cell),
    ("single_row", _gen_single_row),
    ("single_col", _gen_single_col),
    ("fully_dense", _gen_fully_dense),
    ("dense_rows", _gen_dense_rows),
    ("single_diagonal", _gen_single_diagonal),
    ("tall", _gen_tall),
    ("wide", _gen_wide),
    ("power_law", _gen_power_law),
    ("banded", _gen_banded),
    ("uniform", _gen_uniform),
)


def _gen_tensor(rng, kind: str) -> COOTensor3D:
    """A random 3-D tensor; ``kind`` selects a degenerate family."""
    if kind == "empty3":
        dims = tuple(rng.randint(1, 4) for _ in range(3))
        return COOTensor3D(dims, [], [], [], [])
    if kind == "fiber":  # all nonzeros share one (i, j) fiber
        dims = (rng.randint(1, 3), rng.randint(1, 3), rng.randint(2, 8))
        i, j = rng.randrange(dims[0]), rng.randrange(dims[1])
        ks = sorted(
            rng.sample(range(dims[2]), rng.randint(1, dims[2]))
        )
        return COOTensor3D(
            dims, [i] * len(ks), [j] * len(ks), ks,
            [_rand_val(rng) for _ in ks],
        )
    dims = tuple(rng.randint(1, 6) for _ in range(3))
    seen = sorted(
        {
            (rng.randrange(dims[0]), rng.randrange(dims[1]),
             rng.randrange(dims[2]))
            for _ in range(rng.randint(0, 12))
        }
    )
    rows, cols, zs = (
        [list(axis) for axis in zip(*seen)] if seen else ([], [], [])
    )
    return COOTensor3D(dims, rows, cols, zs, [_rand_val(rng) for _ in rows])


CASE_KINDS_3D = ("empty3", "fiber", "uniform3")


def _shuffle_coo(coo: COOMatrix, rng) -> COOMatrix:
    order = list(range(coo.nnz))
    rng.shuffle(order)
    return COOMatrix(
        coo.nrows, coo.ncols,
        [coo.row[n] for n in order],
        [coo.col[n] for n in order],
        [coo.val[n] for n in order],
    )


def _make_source_2d(src: str, dense: Dense, rng) -> object | None:
    """Build the source container *independently* of the code under test."""
    coo = COOMatrix.from_dense(dense)
    if src == "COO":
        return _shuffle_coo(coo, rng)
    if src == "SCOO":
        return coo
    if src == "MCOO":
        return MortonCOOMatrix.from_coo(coo)
    if src == "CSR":
        return CSRMatrix.from_dense(dense)
    if src == "CSC":
        return CSCMatrix.from_dense(dense)
    if src == "DIA":
        return DIAMatrix.from_dense(dense)
    if src.startswith("BCSR"):
        bsize = int(src[4:]) if src[4:] else BCSR_BSIZE
        return BCSRMatrix.from_dense(dense, bsize)
    if src == "ELL":
        ell = ELLMatrix.from_dense(dense)
        # Sometimes over-allocate the width: inspectors must treat PAD
        # columns as absent whether or not any row fills the width.
        if rng.random() < 0.5:
            return ELLMatrix.from_dense(dense, ell.width + rng.randint(1, 3))
        return ell
    raise KeyError(src)


def _make_source_3d(src: str, tensor: COOTensor3D, rng) -> object:
    coo = tensor.sorted_lexicographic()
    if src == "COO3D":
        order = list(range(coo.nnz))
        rng.shuffle(order)
        return COOTensor3D(
            coo.dims,
            [coo.row[n] for n in order],
            [coo.col[n] for n in order],
            [coo.z[n] for n in order],
            [coo.val[n] for n in order],
        )
    if src == "SCOO3D":
        return coo
    if src == "MCOO3":
        return MortonCOOTensor3D.from_coo(coo)
    if src == "CSF":
        return CSFTensor.from_coo(coo)
    raise KeyError(src)


# ----------------------------------------------------------------------
# Oracles


def _baseline_outputs(src: str, dst: str, container) -> list:
    """Hand-written reference conversions for (src, dst), when they exist."""
    from repro.baselines import mkl_style, sparskit_style, taco_style

    refs = []
    if src in ("COO", "SCOO"):
        coo = (
            container
            if container.is_sorted_lexicographic()
            else container.sorted_lexicographic()
        )
        if dst == "CSR":
            refs = [taco_style.coo_to_csr(coo), mkl_style.coo_to_csr(coo),
                    sparskit_style.coocsr(coo)]
        elif dst == "CSC":
            refs = [taco_style.coo_to_csc(coo), mkl_style.coo_to_csc(coo),
                    sparskit_style.coocsc(coo)]
        elif dst == "DIA":
            refs = [taco_style.coo_to_dia(coo), mkl_style.coo_to_dia(coo),
                    sparskit_style.coodia(coo)]
    elif src == "CSR":
        if dst == "CSC":
            refs = [taco_style.csr_to_csc(container),
                    mkl_style.csr_to_csc(container),
                    sparskit_style.csrcsc(container)]
        elif dst == "DIA":
            refs = [taco_style.csr_to_dia(container),
                    sparskit_style.csrdia(container)]
    return refs


_ARRAY_FIELDS = {
    "CSR": ("rowptr", "col", "val"),
    "CSC": ("colptr", "row", "val"),
    "DIA": ("off", "data"),
    "SCOO": ("row", "col", "val"),
    "MCOO": ("row", "col", "val"),
    "BCSR": ("browptr", "bcol", "data"),
    "SCOO3D": ("row", "col", "z", "val"),
    "COO3D": ("row", "col", "z", "val"),
    "MCOO3": ("row", "col", "z", "val"),
}


def _arrays_differ(dst: str, a, b) -> Optional[str]:
    fields = _ARRAY_FIELDS.get(dst)
    if fields is None and dst.startswith("BCSR"):
        fields = _ARRAY_FIELDS["BCSR"]
    for name in fields or ():
        if list(getattr(a, name)) != list(getattr(b, name)):
            return name
    return None


# ----------------------------------------------------------------------
# Reporting


@dataclass
class FuzzFailure:
    """One surviving discrepancy, shrunk to a minimal reproducing input."""

    case: int
    kind: str
    src: str
    dst: str
    backend: str
    optimize: bool
    stage: str  # convert | structure | dense | baseline | backend | gate
    message: str
    input_repr: dict

    def to_dict(self) -> dict:
        return {
            "case": self.case,
            "kind": self.kind,
            "src": self.src,
            "dst": self.dst,
            "backend": self.backend,
            "optimize": self.optimize,
            "stage": self.stage,
            "message": self.message,
            "input": self.input_repr,
        }


@dataclass
class FuzzReport:
    """Machine-readable outcome of a fuzzing run."""

    seed: int
    cases_requested: int
    cases_run: int = 0
    conversions_checked: int = 0
    gate_probes: int = 0
    combos_total: int = 0
    combos_covered: int = 0
    skipped_pairs: list = field(default_factory=list)
    #: Backends excluded from the matrix because ``require()`` failed:
    #: ``[{"backend": name, "reason": message}, ...]`` — a run on a box
    #: without a C toolchain records *why* the C tier was not fuzzed.
    skipped_backends: list = field(default_factory=list)
    failures: list = field(default_factory=list)
    #: Per-combo span attribution: ``"SRC->DST:backend:opt" ->
    #: {"cases", "seconds", "failures"}`` aggregated over the run.
    combo_timings: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "cases_requested": self.cases_requested,
            "cases_run": self.cases_run,
            "conversions_checked": self.conversions_checked,
            "gate_probes": self.gate_probes,
            "combos_total": self.combos_total,
            "combos_covered": self.combos_covered,
            "skipped_pairs": list(self.skipped_pairs),
            "skipped_backends": [dict(s) for s in self.skipped_backends],
            "ok": self.ok,
            "failures": [f.to_dict() for f in self.failures],
            "combo_timings": {
                key: dict(value)
                for key, value in sorted(self.combo_timings.items())
            },
        }

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.failures)} FAILURES"
        lines = [
            f"fuzz: seed {self.seed}, {self.cases_run} cases, "
            f"{self.conversions_checked} conversions and "
            f"{self.gate_probes} gate probes checked, "
            f"{self.combos_covered}/{self.combos_total} "
            f"pair/backend/optimize combos covered — {status}"
        ]
        if self.skipped_pairs:
            lines.append(
                f"  ({len(self.skipped_pairs)} pairs have no direct "
                f"synthesis: {', '.join(self.skipped_pairs)})"
            )
        for skip in self.skipped_backends:
            lines.append(
                f"  (backend {skip['backend']!r} skipped: {skip['reason']})"
            )
        if self.combos_covered < self.combos_total:
            lines.append(
                "  WARNING: case budget below combo count — raise --cases "
                "for exhaustive pair coverage"
            )
        for failure in self.failures:
            lines.append(
                f"  FAIL case {failure.case} [{failure.stage}] "
                f"{failure.src}->{failure.dst} backend={failure.backend} "
                f"optimize={failure.optimize} ({failure.kind}): "
                f"{failure.message}"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Case execution


def _input_repr(container) -> dict:
    if hasattr(container, "to_dense"):
        return {
            "dense": container.to_dense(),
            "container": repr(container),
        }
    return {
        "dims": list(container.dims),
        "entries": sorted(
            (list(c), v) for c, v in container.to_dict().items()
        ),
        "container": repr(container),
    }


def _reference_backends(backend: str) -> tuple[str, ...]:
    """Every backend this one is differentially checked against.

    ``differential_references`` (plural) wins when declared — the C tier
    is compared against both python and numpy; otherwise the single
    ``differential_reference`` applies.
    """
    backend_obj = get_backend(backend)
    refs = backend_obj.differential_references
    if not refs and backend_obj.differential_reference is not None:
        refs = (backend_obj.differential_reference,)
    return tuple(r for r in refs if r != backend)


def _run_case_2d(dense: Dense, src: str, dst: str, backend: str,
                 optimize: bool, rng) -> Optional[tuple[str, str]]:
    """Run one conversion case; return (stage, message) on discrepancy."""
    from repro import convert

    container = _make_source_2d(src, dense, rng)
    try:
        out = convert(
            container, dst,
            backend=backend,
            optimize=optimize,
            assume_sorted=(src != "COO"),
            validate="full",
        )
    except ValidationError as err:
        return "convert", f"well-formed input rejected: {err}"
    except Exception as err:  # noqa: BLE001 - any escape is a finding
        return "convert", f"{type(err).__name__}: {err}"
    try:
        out.check()
    except ValidationError as err:
        return "structure", str(err)
    if not dense_equal(out.to_dense(), dense):
        return "dense", "dense image differs from the generator reference"
    try:
        refs = _baseline_outputs(src, dst, container)
    except Exception as err:  # noqa: BLE001 - baseline crash is a finding
        return "baseline", f"baseline raised {type(err).__name__}: {err}"
    for ref in refs:
        differing = _arrays_differ(dst, out, ref)
        if differing is not None:
            return (
                "baseline",
                f"synthesized {differing} differs from "
                f"{type(ref).__name__} baseline",
            )
    for reference_backend in _reference_backends(backend):
        scalar = convert(
            container, dst,
            backend=reference_backend,
            optimize=optimize,
            assume_sorted=(src != "COO"),
            validate="off",
        )
        differing = _arrays_differ(dst, out, scalar)
        if differing is not None:
            return (
                "backend",
                f"{backend} lowering's {differing} differs from the "
                f"{reference_backend} lowering",
            )
    return None


def _run_case_3d(tensor: COOTensor3D, src: str, dst: str, backend: str,
                 optimize: bool, rng) -> Optional[tuple[str, str]]:
    from repro import convert

    container = _make_source_3d(src, tensor, rng)
    reference = tensor.to_dict()
    try:
        out = convert(
            container, dst,
            backend=backend,
            optimize=optimize,
            assume_sorted=(src != "COO3D"),
            validate="full",
        )
    except ValidationError as err:
        return "convert", f"well-formed input rejected: {err}"
    except Exception as err:  # noqa: BLE001
        return "convert", f"{type(err).__name__}: {err}"
    try:
        out.check_against_dense(reference)
    except ValidationError as err:
        return "dense", str(err)
    for reference_backend in _reference_backends(backend):
        scalar = convert(
            container, dst,
            backend=reference_backend,
            optimize=optimize,
            assume_sorted=(src != "COO3D"),
            validate="off",
        )
        differing = _arrays_differ(dst, out, scalar)
        if differing is not None:
            return (
                "backend",
                f"{backend} lowering's {differing} differs from the "
                f"{reference_backend} lowering",
            )
    return None


# ----------------------------------------------------------------------
# Shrinking


def _shrink_dense(dense: Dense, predicate, *, budget: int = 200) -> Dense:
    """Greedy minimization: zero out nonzeros, then trim trailing dims."""
    current = [row[:] for row in dense]
    attempts = 0
    improved = True
    while improved and attempts < budget:
        improved = False
        # 1. Try zeroing each nonzero.
        for i, row in enumerate(current):
            for j, v in enumerate(row):
                if v == 0.0 or attempts >= budget:
                    continue
                candidate = [r[:] for r in current]
                candidate[i][j] = 0.0
                attempts += 1
                if predicate(candidate):
                    current = candidate
                    improved = True
        # 2. Try dropping the last row / column.
        while len(current) > 1 and attempts < budget:
            candidate = [r[:] for r in current[:-1]]
            attempts += 1
            if predicate(candidate):
                current = candidate
                improved = True
            else:
                break
        while current and len(current[0]) > 1 and attempts < budget:
            candidate = [r[:-1] for r in current]
            attempts += 1
            if predicate(candidate):
                current = candidate
                improved = True
            else:
                break
    return current


def _shrink_tensor(tensor: COOTensor3D, predicate, *,
                   budget: int = 120) -> COOTensor3D:
    """Greedy minimization for 3-D cases: drop entries, shrink dims."""
    current = tensor
    attempts = 0
    improved = True
    while improved and attempts < budget:
        improved = False
        for n in range(current.nnz):
            if attempts >= budget:
                break
            keep = [m for m in range(current.nnz) if m != n]
            candidate = COOTensor3D(
                current.dims,
                [current.row[m] for m in keep],
                [current.col[m] for m in keep],
                [current.z[m] for m in keep],
                [current.val[m] for m in keep],
            )
            attempts += 1
            if predicate(candidate):
                current = candidate
                improved = True
                break
        for axis in range(3):
            if attempts >= budget or current.dims[axis] <= 1:
                continue
            dims = list(current.dims)
            dims[axis] -= 1
            axis_coords = (current.row, current.col, current.z)[axis]
            if any(c >= dims[axis] for c in axis_coords):
                continue
            candidate = COOTensor3D(
                tuple(dims), current.row, current.col, current.z,
                current.val,
            )
            attempts += 1
            if predicate(candidate):
                current = candidate
                improved = True
    return current


# ----------------------------------------------------------------------
# Gate probes: malformed inputs must raise ValidationError


def _gate_probes(rng) -> list[tuple[str, object, dict]]:
    """(label, malformed container, convert kwargs) triples for the gate."""
    dup = COOMatrix(3, 3, [0, 0, 1], [1, 1, 2], [1.0, 2.0, 3.0])
    oob_row = COOMatrix(2, 2, [0, 5], [0, 1], [1.0, 2.0])
    oob_col = COOMatrix(2, 2, [0, 1], [0, -3], [1.0, 2.0])
    unsorted = COOMatrix(3, 3, [2, 0, 1], [0, 2, 1], [1.0, 2.0, 3.0])
    ragged = COOMatrix(2, 2, [0], [0, 1], [1.0])
    bad_csr_dup = CSRMatrix(2, 3, [0, 2, 3], [1, 1, 2], [1.0, 2.0, 3.0])
    bad_csr_unsorted = CSRMatrix(2, 3, [0, 2, 3], [2, 0, 1],
                                 [1.0, 2.0, 3.0])
    bad_csr_ptr = CSRMatrix(2, 3, [0, 3, 2], [0, 1, 2], [1.0, 2.0, 3.0])
    bad_csc = CSCMatrix(3, 2, [0, 2, 3], [1, 1, 2], [1.0, 2.0, 3.0])
    bad_dia = DIAMatrix(2, 2, [1, 0], [0.0] * 4)
    dup3 = COOTensor3D((2, 2, 2), [0, 0], [1, 1], [1, 1], [1.0, 2.0])
    oob3 = COOTensor3D((2, 2, 2), [0, 3], [0, 0], [0, 0], [1.0, 2.0])
    unsorted3 = COOTensor3D((2, 2, 2), [1, 0], [0, 0], [0, 0], [1.0, 2.0])
    return [
        ("coo-duplicate", dup, {"dst": "CSR"}),
        ("coo-out-of-bounds-row", oob_row, {"dst": "CSR"}),
        ("coo-out-of-bounds-col", oob_col, {"dst": "CSC"}),
        ("coo-unsorted-claimed-sorted", unsorted, {"dst": "CSR"}),
        ("coo-ragged-arrays", ragged, {"dst": "CSR"}),
        ("csr-duplicate-columns", bad_csr_dup, {"dst": "CSC"}),
        ("csr-unsorted-columns", bad_csr_unsorted, {"dst": "CSC"}),
        ("csr-nonmonotonic-rowptr", bad_csr_ptr, {"dst": "CSC"}),
        ("csc-duplicate-rows", bad_csc, {"dst": "CSR"}),
        ("dia-unsorted-offsets", bad_dia, {"dst": "CSR"}),
        ("coo3d-duplicate", dup3, {"dst": "MCOO3"}),
        ("coo3d-out-of-bounds", oob3, {"dst": "MCOO3"}),
        ("coo3d-unsorted-claimed-sorted", unsorted3, {"dst": "MCOO3"}),
    ]


def _run_gate_probe(label, container, kwargs, backend) -> Optional[str]:
    from repro import convert

    try:
        convert(container, kwargs["dst"], backend=backend,
                validate="inputs")
    except ValidationError:
        return None
    except Exception as err:  # noqa: BLE001 - wrong exception type
        return (
            f"gate probe {label}: expected ValidationError, got "
            f"{type(err).__name__}: {err}"
        )
    return (
        f"gate probe {label}: malformed input was converted without a "
        f"ValidationError"
    )


# ----------------------------------------------------------------------
# Random level-composition fuzzing

#: Pivot formats random compositions are fuzzed against, by rank: every
#: composition converts *to* the pivot, and dest-capable ones also
#: convert *from* it.
RANDOM_FORMAT_PIVOTS = {2: "SCOO", 3: "SCOO3D"}


def _random_dense_3d(rng) -> list:
    """A random 3-D dense tensor (degenerate shapes included)."""
    dims = tuple(rng.randint(1, 5) for _ in range(3))
    dense = [
        [[0.0] * dims[2] for _ in range(dims[1])] for _ in range(dims[0])
    ]
    for _ in range(rng.randint(0, 14)):
        i, j, k = (rng.randrange(d) for d in dims)
        dense[i][j][k] = _rand_val(rng)
    return dense


def _dense_nd_equal(a, b, tol: float = 1e-9) -> bool:
    """:func:`dense_equal` for any rank (nested-list dense images)."""
    if isinstance(a, list) and isinstance(b, list):
        return len(a) == len(b) and all(
            _dense_nd_equal(x, y, tol) for x, y in zip(a, b)
        )
    return not isinstance(a, list) and not isinstance(b, list) \
        and abs(a - b) <= tol


def _env_from_outputs(conversion, outputs: dict, src_env: dict) -> dict:
    """Map inspector outputs back into a composition's environment.

    The destination composition's :meth:`interpret` wants arrays under
    the descriptor's *canonical* UF names; ``uf_output_map`` translates
    those to the inspector's (possibly suffixed) output names.  Outputs
    that are neither mapped UFs nor ``Adst`` are derived size symbols
    (``NNZ``, ``NB``, ``ND``...) and pass through under their own names;
    shape symbols come from the source environment.
    """
    mapped = set(conversion.uf_output_map.values())
    env = {
        canonical: outputs[output]
        for canonical, output in conversion.uf_output_map.items()
        if output in outputs
    }
    for name, value in outputs.items():
        if name == "Adst":
            env["Asrc"] = value
        elif name not in mapped:
            env[name] = value
    for sym, value in src_env.items():
        if isinstance(value, int) and sym not in env:
            env[sym] = value
    return env


def fuzz_random_formats(
    count: int = 50,
    *,
    seed: int = 0,
    backends: Sequence[str] | None = None,
    optimize_levels: Sequence[bool] = (True, False),
    max_failures: int = 25,
) -> FuzzReport:
    """Differentially fuzz randomly generated level compositions.

    Each case draws a random valid composition from
    :func:`repro.formats.levels.random_composition` and an adversarial
    dense input, then checks — on every available backend and optimize
    level — that

    * the composed descriptor *synthesizes* (a crash is a finding),
    * converting the composition's arrays to the rank's pivot format
      (:data:`RANDOM_FORMAT_PIVOTS`) reproduces the dense image, with
      the composition's own :meth:`~repro.formats.levels.Composition.
      assemble` as the independent oracle,
    * dest-capable compositions also convert *from* the pivot, checked
      through :meth:`~repro.formats.levels.Composition.interpret`,
    * all backends produce identical output arrays.

    Runs are deterministic per ``seed``.  Failures are not shrunk (each
    case is already a single composition + small dense input); the
    report reuses :class:`FuzzReport` with one conversion checked per
    (direction, backend, optimize) combination.
    """
    from repro.formats.levels import LevelError, random_composition

    rng = random.Random(seed)
    report = FuzzReport(seed=seed, cases_requested=count)
    if backends is None:
        backends = backend_names()
    available = []
    for candidate in backends:
        try:
            get_backend(candidate).require()
        except Exception as err:  # noqa: BLE001 - any require failure skips
            report.skipped_backends.append(
                {"backend": candidate, "reason": str(err)}
            )
            continue
        available.append(candidate)
    backends = tuple(available)
    if not backends:
        return report

    def fail(case, comp, dense, direction, backend, optimize, stage,
             message):
        report.failures.append(
            FuzzFailure(
                case=case, kind=comp.family, src=direction[0],
                dst=direction[1], backend=backend, optimize=optimize,
                stage=stage, message=message,
                input_repr={"spec": comp.spec(), "dense": dense},
            )
        )

    for case in range(count):
        if len(report.failures) >= max_failures:
            break
        case_rng = random.Random(rng.randrange(1 << 30))
        comp = random_composition(case_rng, name=f"RF{case}")
        if comp.rank == 3:
            dense = _random_dense_3d(case_rng)
        else:
            _, gen = CASE_KINDS_2D[case_rng.randrange(len(CASE_KINDS_2D))]
            dense = gen(case_rng)
        report.cases_run += 1
        pivot_name = RANDOM_FORMAT_PIVOTS[comp.rank]
        pivot_fmt = get_format(pivot_name)
        pivot_comp = pivot_fmt.levels
        try:
            fmt = comp.build()
            env = comp.assemble(dense)
        except (LevelError, ValueError) as err:
            fail(case, comp, dense, (comp.name, pivot_name), "-", True,
                 "build", f"{type(err).__name__}: {err}")
            continue
        directions = [(fmt, pivot_fmt, comp, pivot_comp, env)]
        if comp.dest_capable:
            directions.append(
                (pivot_fmt, fmt, pivot_comp, comp,
                 pivot_comp.assemble(dense))
            )
        for src_fmt, dst_fmt, _, dst_comp, src_env in directions:
            direction = (src_fmt.name, dst_fmt.name)
            for optimize in optimize_levels:
                reference_outputs = None
                for backend in backends:
                    report.conversions_checked += 1
                    try:
                        conversion = synthesize_cached(
                            src_fmt, dst_fmt,
                            backend=backend, optimize=optimize,
                        )
                    except SynthesisError as err:
                        fail(case, comp, dense, direction, backend,
                             optimize, "synthesize", str(err))
                        continue
                    try:
                        outputs = conversion(
                            **{p: src_env[p] for p in conversion.params}
                        )
                    except Exception as err:  # noqa: BLE001 - a finding
                        fail(case, comp, dense, direction, backend,
                             optimize, "run",
                             f"{type(err).__name__}: {err}")
                        continue
                    got = dst_comp.interpret(
                        _env_from_outputs(conversion, outputs, src_env)
                    )
                    if not _dense_nd_equal(got, dense):
                        fail(case, comp, dense, direction, backend,
                             optimize, "dense",
                             "dense image differs from the assemble/"
                             "interpret oracle")
                        continue
                    if reference_outputs is None:
                        reference_outputs = (backend, outputs)
                        continue
                    ref_backend, ref = reference_outputs

                    def _plain(value):
                        # Outputs mix arrays and scalar size symbols.
                        return (
                            value if isinstance(value, (int, float))
                            else list(value)
                        )

                    differing = [
                        name for name in sorted(set(ref) | set(outputs))
                        if _plain(ref.get(name, ())) !=
                        _plain(outputs.get(name, ()))
                    ]
                    if differing:
                        fail(case, comp, dense, direction, backend,
                             optimize, "backend",
                             f"{backend} lowering's "
                             f"{', '.join(differing)} differ from the "
                             f"{ref_backend} lowering")
    report.combos_total = report.conversions_checked
    report.combos_covered = report.conversions_checked
    return report


# ----------------------------------------------------------------------
# The driver


def _synthesizable_pairs(sources, dests, backends, optimize_levels,
                         skipped: list) -> list:
    combos = []
    seen_skipped = set()
    for optimize in optimize_levels:
        for src in sources:
            for dst in dests:
                if src == dst:
                    continue
                for backend in backends:
                    try:
                        synthesize_cached(
                            get_format(src), get_format(dst),
                            optimize=optimize, backend=backend,
                        )
                    except SynthesisError:
                        pair = f"{src}->{dst}"
                        if pair not in seen_skipped:
                            seen_skipped.add(pair)
                            skipped.append(pair)
                        continue
                    combos.append((src, dst, backend, optimize))
    return combos


def fuzz(
    cases: int = 200,
    *,
    seed: int = 0,
    backends: Sequence[str] | None = None,
    optimize_levels: Sequence[bool] = (True, False),
    ranks: Sequence[int] = (2, 3),
    sources_2d: Sequence[str] = SOURCES_2D,
    dests_2d: Sequence[str] = DESTS_2D,
    shrink: bool = True,
    max_failures: int = 25,
    trace: bool | None = None,
) -> FuzzReport:
    """Run the differential fuzzer; see the module docstring for the oracles.

    ``cases`` bounds the number of (input, src, dst, backend, optimize)
    executions; combos are scheduled round-robin with pair x backend
    coverage completing first, so ``cases >= combos_total`` guarantees
    every synthesizable pair runs under every backend and optimize flag.
    The fixed malformed-input gate probes always run, for every backend.

    ``backends=None`` (the default) fuzzes every registered backend whose
    ``require()`` passes; unavailable ones land in
    ``report.skipped_backends`` with the reason.  Each backend is
    cross-checked against all of its declared differential references —
    the C tier against both python and numpy.

    ``trace`` forces the :mod:`repro.obs` span tree on/off for the run
    (``None`` follows ``REPRO_TRACE``); while tracing, each case gets a
    ``fuzz.case`` span and per-combo wall time lands in
    ``report.combo_timings`` (left empty otherwise, so untraced reports
    stay deterministic).
    """
    rng = random.Random(seed)
    report = FuzzReport(seed=seed, cases_requested=cases)
    # Availability gate: a backend whose require() fails (no cffi, no C
    # toolchain) is dropped from the matrix with a recorded reason rather
    # than failing the run — fuzzing degrades exactly like conversion.
    if backends is None:
        backends = backend_names()
    available = []
    for candidate in backends:
        try:
            get_backend(candidate).require()
        except Exception as err:  # noqa: BLE001 - any require failure skips
            report.skipped_backends.append(
                {"backend": candidate, "reason": str(err)}
            )
            continue
        available.append(candidate)
    backends = tuple(available)
    fuzz_cases_metric = obs.METRICS.counter(
        "repro_fuzz_cases", "fuzzer cases by outcome"
    )

    def _account(combo_key: str, start: float, failed: bool) -> None:
        fuzz_cases_metric.inc(outcome="fail" if failed else "ok")
        if not obs.tracing():
            # Wall times are attribution data, not fuzzing results: the
            # report stays byte-deterministic across runs unless traced.
            return
        slot = report.combo_timings.setdefault(
            combo_key, {"cases": 0, "seconds": 0.0, "failures": 0}
        )
        slot["cases"] += 1
        slot["seconds"] += time.perf_counter() - start
        slot["failures"] += bool(failed)

    combos = []
    if 2 in ranks:
        combos.extend(
            _synthesizable_pairs(sources_2d, dests_2d, backends,
                                 optimize_levels, report.skipped_pairs)
        )
    if 3 in ranks:
        combos.extend(
            _synthesizable_pairs(SOURCES_3D, DESTS_3D, backends,
                                 optimize_levels, report.skipped_pairs)
        )
    report.combos_total = len(combos)
    if not combos:
        return report

    # Fixed gate probes: malformed inputs must raise, on every backend.
    for backend in backends:
        for label, container, kwargs in _gate_probes(rng):
            report.gate_probes += 1
            message = _run_gate_probe(label, container, kwargs, backend)
            if message is not None:
                report.failures.append(
                    FuzzFailure(
                        case=-1, kind="malformed", src="-",
                        dst=kwargs["dst"], backend=backend, optimize=True,
                        stage="gate", message=message,
                        input_repr={"container": repr(container)},
                    )
                )

    covered: set = set()
    kinds_2d = list(CASE_KINDS_2D)
    with obs.TRACER.forced(trace):
        for case in range(cases):
            if len(report.failures) >= max_failures:
                break
            src, dst, backend, optimize = combos[case % len(combos)]
            covered.add((src, dst, backend, optimize))
            report.cases_run += 1
            report.conversions_checked += 1
            case_seed = rng.randrange(1 << 30)
            combo_key = f"{src}->{dst}:{backend}:opt{int(optimize)}"
            case_start = time.perf_counter()
            with obs.span(
                "fuzz.case", category="fuzz", case=case, combo=combo_key
            ) as case_span:
                if src in SOURCES_3D:
                    kind = CASE_KINDS_3D[case % len(CASE_KINDS_3D)]
                    tensor = _gen_tensor(random.Random(case_seed), kind)

                    def predicate_3d(candidate):
                        return (
                            _run_case_3d(candidate, src, dst, backend,
                                         optimize,
                                         random.Random(case_seed))
                            is not None
                        )

                    outcome = _run_case_3d(
                        tensor, src, dst, backend, optimize,
                        random.Random(case_seed),
                    )
                    if outcome is not None:
                        if shrink:
                            tensor = _shrink_tensor(tensor, predicate_3d)
                            outcome = _run_case_3d(
                                tensor, src, dst, backend, optimize,
                                random.Random(case_seed),
                            ) or outcome
                        stage, message = outcome
                        report.failures.append(
                            FuzzFailure(
                                case=case, kind=kind, src=src, dst=dst,
                                backend=backend, optimize=optimize,
                                stage=stage, message=message,
                                input_repr=_input_repr(tensor),
                            )
                        )
                else:
                    kind, gen = kinds_2d[case % len(kinds_2d)]
                    dense = gen(random.Random(case_seed))

                    def predicate_2d(candidate):
                        return (
                            _run_case_2d(candidate, src, dst, backend,
                                         optimize,
                                         random.Random(case_seed))
                            is not None
                        )

                    outcome = _run_case_2d(
                        dense, src, dst, backend, optimize,
                        random.Random(case_seed),
                    )
                    if outcome is not None:
                        if shrink:
                            dense = _shrink_dense(dense, predicate_2d)
                            outcome = _run_case_2d(
                                dense, src, dst, backend, optimize,
                                random.Random(case_seed),
                            ) or outcome
                        stage, message = outcome
                        report.failures.append(
                            FuzzFailure(
                                case=case, kind=kind, src=src, dst=dst,
                                backend=backend, optimize=optimize,
                                stage=stage, message=message,
                                input_repr={"dense": dense},
                            )
                        )
                failed = outcome is not None
                case_span.set(kind=kind, outcome="fail" if failed else "ok")
            _account(combo_key, case_start, failed)
    report.combos_covered = len(covered)
    return report


__all__ = [
    "CASE_KINDS_2D",
    "CASE_KINDS_3D",
    "DESTS_2D",
    "DESTS_3D",
    "FuzzFailure",
    "FuzzReport",
    "RANDOM_FORMAT_PIVOTS",
    "SOURCES_2D",
    "SOURCES_3D",
    "fuzz",
    "fuzz_random_formats",
]
