"""The runtime validation gate at the ``convert`` boundary.

The synthesized inspectors are correct *given their preconditions*: index
arrays in bounds, no duplicate coordinates, and — for the sorted formats —
the promised ordering.  Historically nothing enforced those preconditions,
so a malformed container flowed through ``convert()`` and came out as a
silently corrupt result (or a bare ``IndexError`` from deep inside
generated code).  This module is the enforcement point:

* ``validate="off"``     — trust the caller entirely (benchmark mode),
* ``validate="inputs"``  — run the source container's :meth:`check` plus
  the ``assume_sorted`` monotonicity precondition (the default),
* ``validate="full"``    — additionally :meth:`check` the converted
  output and compare its dense image against the source's.

Costs: ``"inputs"`` is a constant number of O(nnz) scans; ``"full"`` adds
an O(nrows * ncols) dense materialization per conversion for matrices
(coordinate-map comparison for 3-D tensors), so reserve it for debugging
and the differential fuzzer.
"""

from __future__ import annotations

from repro.errors import UnsortedInputError, ValidationError

VALIDATE_LEVELS = ("off", "inputs", "full")


def _record_rejection(err: ValidationError, where: str) -> None:
    """Count a gate rejection by ``ValidationError`` subclass and site."""
    import repro.obs as obs

    obs.METRICS.counter(
        "repro_gate_rejections", "validation-gate rejections"
    ).inc(error=type(err).__name__, where=where)


def _record_check(where: str) -> None:
    import repro.obs as obs

    obs.METRICS.counter(
        "repro_gate_checks", "validation-gate checks run"
    ).inc(where=where)


def normalize_level(level: str | None) -> str:
    """Validate and canonicalize a ``validate=`` argument."""
    if level is None:
        return "off"
    if level is False:  # tolerate validate=False for validate="off"
        return "off"
    name = str(level).lower()
    if name not in VALIDATE_LEVELS:
        raise ValueError(
            f"validate must be one of {VALIDATE_LEVELS}, got {level!r}"
        )
    return name


def check_input(container, *, level: str = "inputs",
                assume_sorted: bool = True) -> None:
    """Gate a source container before it reaches a synthesized inspector.

    Runs the container's structural :meth:`check` (bounds, duplicates,
    pointer invariants) and, for plain COO containers under
    ``assume_sorted=True``, the cheap lexicographic monotonicity scan the
    sorted descriptors rely on.  Raises a
    :class:`~repro.errors.ValidationError` subclass naming the offending
    coordinate or position; does nothing at ``level="off"``.
    """
    level = normalize_level(level)
    if level == "off":
        return
    _record_check("input")
    try:
        container.check()
    except ValidationError as err:
        _record_rejection(err, "input")
        raise
    if not assume_sorted:
        return
    # The sorted-source precondition: a plain COO container that is about
    # to be bound to the SCOO/SCOO3D descriptor must actually be sorted.
    from repro.runtime import (
        COOMatrix,
        COOTensor3D,
        MortonCOOMatrix,
        MortonCOOTensor3D,
    )

    if isinstance(container, (MortonCOOMatrix, MortonCOOTensor3D)):
        return  # Morton order was already enforced by check().
    if isinstance(container, (COOMatrix, COOTensor3D)):
        position = container.first_unsorted_position()
        if position is not None:
            err = UnsortedInputError(
                f"entries are not lexicographically sorted (first violation "
                f"at position {position}) but assume_sorted=True promised "
                f"sorted input",
                position=position,
                remedy="pass assume_sorted=False to convert via the "
                       "sorting COO descriptor",
                container=repr(container),
            )
            _record_rejection(err, "input")
            raise err


def check_output(result, source, *, level: str = "full") -> None:
    """Gate a converted container against the source's dense semantics.

    At ``level="full"`` the result's invariants are checked and its dense
    image (coordinate map for 3-D tensors) must equal the source's.  Lower
    levels do nothing — outputs of a well-formed input are correct by
    construction, which is exactly the property the fuzzer keeps honest.
    """
    if normalize_level(level) != "full":
        return
    _record_check("output")
    try:
        if hasattr(result, "to_dense") and hasattr(source, "to_dense"):
            result.check_against_dense(source.to_dense())
        elif hasattr(result, "to_dict") and hasattr(source, "to_dict"):
            result.check_against_dense(source.to_dict())
        else:  # pragma: no cover - every container has one of the two
            result.check()
    except ValidationError as err:
        _record_rejection(err, "output")
        raise


__all__ = [
    "VALIDATE_LEVELS",
    "ValidationError",
    "check_input",
    "check_output",
    "normalize_level",
]
