"""The compiled-C tier: artifact cache, availability gating, fallback.

The compile-cache tests pin the PR 2 disk-cache conventions on the .so
artifact store: content-hashed reuse across processes, a cache miss when
either partition key (package code version, compiler version tag) changes,
and the ``REPRO_CBACKEND_DISABLE`` knob confining builds to a per-process
scratch directory.  The availability tests pin the graceful-degradation
contract: a missing soft dependency raises the registry's standard
:class:`BackendUnavailableError` from ``require()``, while every entry
point (``convert``, the planner, the fuzzer) silently falls back a tier.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro import COOMatrix, convert
from repro._prof import PROF
from repro.backends import (
    BackendUnavailableError,
    available_backend,
    c_backend,
    get_backend,
)
from repro.formats import get_format
from repro.synthesis import synthesize

np = pytest.importorskip("numpy")

SRC_DIR = str(Path(c_backend.__file__).parents[2])


def _c_available() -> bool:
    try:
        get_backend("c").require()
    except ValueError:
        return False
    return True


needs_c = pytest.mark.skipif(
    not _c_available(), reason="C toolchain (cffi + compiler) unavailable"
)


def _counter(name: str) -> int:
    return PROF.snapshot()["counters"].get(name, 0)


def _matrix() -> COOMatrix:
    return COOMatrix(3, 4, [0, 1, 2, 2], [1, 0, 2, 3], [1.0, 2.0, 3.0, 4.0])


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    """An isolated artifact cache; the dlopen memo is cleared around it."""
    monkeypatch.setenv("REPRO_CBACKEND_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_CBACKEND_DISABLE", raising=False)
    c_backend.clear_lib_memo()
    yield tmp_path
    c_backend.clear_lib_memo()


def _run_c_conversion():
    """Synthesize COO->CSR on the C tier and execute it once."""
    from repro import container_to_env

    conv = synthesize(get_format("COO"), get_format("CSR"), backend="c")
    env = container_to_env(_matrix())
    out = conv(**{p: env[p] for p in conv.params})
    return conv, out


@needs_c
class TestCompileCache:
    def test_miss_then_disk_hit(self, cache_dir):
        miss0, hit0 = _counter("cbackend.compile.miss"), _counter(
            "cbackend.compile.hit"
        )
        _run_c_conversion()
        assert _counter("cbackend.compile.miss") == miss0 + 1
        # Artifact + its .c source are published in the partition dir.
        sos = list(cache_dir.glob("*/*.so"))
        assert len(sos) == 1
        assert sos[0].with_suffix(".c").exists()
        assert c_backend.artifact_dir() == sos[0].parent
        # A fresh dlopen (new process simulated by clearing the memo)
        # must be served from disk: hit, no second compile.
        c_backend.clear_lib_memo()
        _run_c_conversion()
        assert _counter("cbackend.compile.miss") == miss0 + 1
        assert _counter("cbackend.compile.hit") > hit0

    def test_memo_hit_without_reload(self, cache_dir):
        _run_c_conversion()
        hit0 = _counter("cbackend.compile.hit")
        miss0 = _counter("cbackend.compile.miss")
        _run_c_conversion()  # same translation unit, memoized dlopen
        assert _counter("cbackend.compile.hit") == hit0 + 1
        assert _counter("cbackend.compile.miss") == miss0

    def test_cross_process_artifact_reuse(self, cache_dir):
        script = (
            "import json\n"
            "from repro import COOMatrix, convert\n"
            "from repro._prof import PROF\n"
            "m = COOMatrix(3, 4, [0, 1, 2, 2], [1, 0, 2, 3],\n"
            "              [1.0, 2.0, 3.0, 4.0])\n"
            "csr = convert(m, 'CSR', backend='c')\n"
            "assert csr.rowptr == [0, 1, 2, 4], csr.rowptr\n"
            "c = PROF.snapshot()['counters']\n"
            "print(json.dumps({k: v for k, v in c.items()\n"
            "                  if k.startswith('cbackend.')}))\n"
        )

        def run_once() -> dict:
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env={
                    **dict(__import__("os").environ),
                    "PYTHONPATH": SRC_DIR,
                    "REPRO_CBACKEND_DIR": str(cache_dir),
                    "REPRO_CACHE_DISABLE": "1",
                },
            )
            assert proc.returncode == 0, proc.stderr
            return json.loads(proc.stdout.splitlines()[-1])

        cold = run_once()
        assert cold.get("cbackend.compile.miss", 0) >= 1
        warm = run_once()
        assert warm.get("cbackend.compile.miss", 0) == 0
        assert warm.get("cbackend.compile.hit", 0) >= 1

    def test_miss_on_code_version_bump(self, cache_dir, monkeypatch):
        _run_c_conversion()
        miss0 = _counter("cbackend.compile.miss")
        monkeypatch.setattr(
            "repro.codeversion.code_version_hash", lambda: "0" * 64
        )
        c_backend.clear_lib_memo()
        _run_c_conversion()
        assert _counter("cbackend.compile.miss") == miss0 + 1
        assert (cache_dir / c_backend.artifact_dir().name).name.startswith(
            "0" * 12
        )

    def test_miss_on_compiler_change(self, cache_dir, monkeypatch):
        _run_c_conversion()
        miss0 = _counter("cbackend.compile.miss")
        monkeypatch.setattr(c_backend, "_COMPILER_TAG", "f" * 16)
        c_backend.clear_lib_memo()
        _run_c_conversion()
        assert _counter("cbackend.compile.miss") == miss0 + 1
        assert c_backend.artifact_dir().name.endswith("f" * 12)

    def test_disable_knob_confines_to_scratch(self, cache_dir, monkeypatch):
        monkeypatch.setenv("REPRO_CBACKEND_DISABLE", "1")
        monkeypatch.setattr(c_backend, "_SCRATCH", None)
        c_backend.clear_lib_memo()
        conv, out = _run_c_conversion()
        assert out["rowptr"][-1] == 4
        assert not list(cache_dir.glob("*/*.so"))
        assert list(c_backend._scratch_dir().glob("*.so"))


@needs_c
class TestExecution:
    def test_matches_python_tier(self, cache_dir):
        m = _matrix()
        a = convert(m, "CSR", backend="python")
        b = convert(m, "CSR", backend="c")
        assert (a.rowptr, a.col, a.val) == (b.rowptr, b.col, b.val)

    def test_error_code_maps_to_overflow(self, cache_dir):
        # Morton keys are range-checked in C (31 bits per 2-D coordinate);
        # RT_ERANGE must surface as the OverflowError the interpreted
        # runtime raises, not as a wrong answer.
        from repro import container_to_env

        conv = synthesize(get_format("COO"), get_format("MCOO"), backend="c")
        big = COOMatrix(2**31 + 1, 2, [2**31], [0], [1.0])
        env = container_to_env(big)
        with pytest.raises(OverflowError):
            conv(**{p: env[p] for p in conv.params})

    def test_cost_model_delegates_for_fallback_source(self):
        # A conversion whose source is not a compiled wrapper costs what
        # the python tier charges (the fallback executes scalar loops).
        conv = synthesize(get_format("COO"), get_format("CSR"))
        c_cost = get_backend("c").estimate_cost(conv)
        assert c_cost == get_backend("python").estimate_cost(conv)

    def test_native_cost_below_numpy_with_stats(self, cache_dir):
        import dataclasses

        from repro.planner import matrix_stats

        c_conv = synthesize(get_format("COO"), get_format("CSR"), backend="c")
        np_conv = synthesize(
            get_format("COO"), get_format("CSR"), backend="numpy"
        )
        big = dataclasses.replace(
            matrix_stats(_matrix()), nrows=300_000, ncols=400_000, nnz=500_000
        )
        assert get_backend("c").estimate_cost(c_conv, big) < get_backend(
            "numpy"
        ).estimate_cost(np_conv, big)


class TestAvailability:
    def test_cffi_absent_raises_registry_error(self, monkeypatch):
        monkeypatch.setitem(sys.modules, "cffi", None)
        with pytest.raises(BackendUnavailableError) as exc:
            get_backend("c").require()
        assert exc.value.backend == "c"
        assert "cffi" in exc.value.reason
        assert isinstance(exc.value, ValueError)  # registry's standard type

    def test_no_compiler_raises_registry_error(self, monkeypatch):
        # A set-but-missing $CC is authoritative: the backend must report
        # unavailable instead of silently picking another compiler.
        monkeypatch.setenv("CC", "/nonexistent/cc")
        monkeypatch.setattr(c_backend, "_COMPILER_TAG", None)
        with pytest.raises(BackendUnavailableError) as exc:
            get_backend("c").require()
        assert "compiler" in exc.value.reason

    def test_available_backend_degrades_to_numpy(self, monkeypatch):
        monkeypatch.setenv("CC", "/nonexistent/cc")
        monkeypatch.setattr(c_backend, "_COMPILER_TAG", None)
        fallback0 = _counter("backend.fallback.c->numpy")
        assert available_backend("c").name == "numpy"
        assert _counter("backend.fallback.c->numpy") == fallback0 + 1

    def test_convert_degrades_instead_of_failing(self, monkeypatch):
        monkeypatch.setenv("CC", "/nonexistent/cc")
        monkeypatch.setattr(c_backend, "_COMPILER_TAG", None)
        m = _matrix()
        csr = convert(m, "CSR", backend="c")
        ref = convert(m, "CSR", backend="python")
        assert (csr.rowptr, csr.col, csr.val) == (ref.rowptr, ref.col, ref.val)

    def test_fuzz_records_skip_reason(self, monkeypatch):
        import importlib

        fuzz_mod = importlib.import_module("repro.verify.fuzz")
        monkeypatch.setenv("CC", "/nonexistent/cc")
        monkeypatch.setattr(c_backend, "_COMPILER_TAG", None)
        report = fuzz_mod.fuzz(
            cases=2, seed=0, backends=("python", "c"), shrink=False
        )
        assert report.ok
        skips = {s["backend"]: s["reason"] for s in report.skipped_backends}
        assert "c" in skips and "compiler" in skips["c"]
        assert "skipped" in report.summary()
        assert report.to_dict()["skipped_backends"]


class TestLazyCSource:
    def test_not_rendered_until_asked(self):
        conv = synthesize(get_format("COO"), get_format("CSR"))
        assert conv._c_source is None
        source = conv.c_source
        assert "for (" in source
        assert conv._c_source is source  # memoized
        assert conv.c_source is source

    def test_disk_loaded_conversion_degrades_to_empty(self):
        import dataclasses

        conv = synthesize(get_format("COO"), get_format("CSR"))
        stripped = dataclasses.replace(
            conv, computation=None, symtab=None, _c_source=None
        )
        assert stripped.c_source == ""
