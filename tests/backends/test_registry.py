"""The backend registry and the legacy string-API shim."""

import pytest

from repro.backends import (
    Backend,
    BackendCapabilities,
    NumpyBackend,
    PythonBackend,
    all_backends,
    backend_names,
    get_backend,
    register_backend,
    unregister_backend,
)


class TestBuiltins:
    def test_python_is_default_and_reference(self):
        assert backend_names()[0] == "python"
        assert get_backend("python").differential_reference is None

    def test_numpy_cross_checks_against_python(self):
        assert get_backend("numpy").differential_reference == "python"

    def test_capabilities_declared(self):
        numpy = get_backend("numpy")
        assert numpy.capabilities.vectorized
        assert numpy.capabilities.strategies
        python = get_backend("python")
        assert not python.capabilities.vectorized
        assert set(python.capabilities.ranks) == {2, 3}


class TestShim:
    def test_string_resolves_to_instance(self):
        assert isinstance(get_backend("python"), PythonBackend)
        assert isinstance(get_backend("numpy"), NumpyBackend)

    def test_instance_passes_through(self):
        backend = get_backend("numpy")
        assert get_backend(backend) is backend

    def test_unknown_name_keeps_legacy_error(self):
        # Pinned: callers match on this exact message.
        with pytest.raises(
            ValueError, match="unknown lowering backend 'cuda'"
        ):
            get_backend("cuda")

    def test_synthesize_accepts_instance(self):
        from repro.formats import csr, scoo
        from repro.synthesis import synthesize

        by_name = synthesize(scoo(), csr(), backend="numpy")
        by_instance = synthesize(scoo(), csr(), backend=get_backend("numpy"))
        assert by_instance.source == by_name.source
        assert by_instance.backend == "numpy"


class _TracingBackend(PythonBackend):
    name = "tracing-test"
    description = "scalar lowering registered by the test suite"
    capabilities = BackendCapabilities(
        ranks=(2,), vectorized=False, strategies=("scalar-loops",)
    )


@pytest.fixture
def custom_backend():
    backend = register_backend(_TracingBackend())
    yield backend
    unregister_backend(backend.name)


class TestRegistration:
    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend(PythonBackend())

    def test_non_backend_rejected(self):
        with pytest.raises(TypeError):
            register_backend("python")

    def test_registered_backend_usable_by_name(self, custom_backend):
        assert "tracing-test" in backend_names()
        assert get_backend("tracing-test") is custom_backend

        from repro import COOMatrix, convert

        coo = COOMatrix.from_dense([[1.0, 0.0], [0.0, 2.0]])
        csr = convert(coo, "CSR", backend="tracing-test", validate="off")
        assert csr.rowptr == [0, 1, 2]

    def test_registered_backend_listed_by_cli(self, custom_backend, capsys):
        from repro.__main__ import main

        assert main(["passes"]) == 0
        assert "tracing-test" in capsys.readouterr().out

    def test_describe_shape(self):
        desc = get_backend("numpy").describe()
        assert set(desc) == {
            "name", "description", "differential_reference", "capabilities"
        }
        assert desc["capabilities"]["vectorized"] is True


class TestAllBackends:
    def test_matches_names(self):
        assert tuple(b.name for b in all_backends()) == backend_names()

    def test_every_backend_importable_namespace(self):
        for backend in all_backends():
            ns = backend.namespace()
            assert isinstance(ns, dict) and "BSEARCH" in ns


class TestAbstractBase:
    def test_hooks_have_safe_defaults(self):
        backend = Backend()
        assert backend.materialize({"x": 1}) == {"x": 1}
        assert backend.native_inputs({"x": 1}) == {"x": 1}
        backend.require()  # no soft deps by default
        with pytest.raises(NotImplementedError):
            backend.namespace()
        with pytest.raises(NotImplementedError):
            backend.estimate_cost(None)
