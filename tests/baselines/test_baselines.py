"""Unit tests for the baseline conversion libraries."""

import random

import pytest

from repro.baselines import REGISTRY, mkl_style, sparskit_style, taco_style
from repro.baselines.hicoo import blocked_morton_sort, whole_tensor_morton_sort
from repro.datagen import shuffled, synthetic_tensor3d
from repro.runtime import COOMatrix, CSRMatrix, dense_equal


def random_dense(nrows, ncols, density=0.3, seed=0):
    rng = random.Random(seed)
    return [
        [
            round(rng.uniform(0.5, 9.5), 3) if rng.random() < density else 0.0
            for _ in range(ncols)
        ]
        for _ in range(nrows)
    ]


DENSE = random_dense(12, 14, 0.3, seed=42)
COO = COOMatrix.from_dense(DENSE)
CSR = CSRMatrix.from_dense(DENSE)


class TestRegistry:
    def test_all_conversions_covered(self):
        conversions = {c for c, _ in REGISTRY}
        assert conversions == {"COO_CSR", "COO_CSC", "CSR_CSC", "COO_DIA"}

    def test_all_libraries_covered(self):
        libs = {l for _, l in REGISTRY}
        assert libs == {"taco", "sparskit", "mkl"}

    @pytest.mark.parametrize("key", sorted(REGISTRY, key=str))
    def test_every_entry_correct(self, key):
        fn = REGISTRY[key]
        src = CSR if key[0].startswith("CSR") else COO
        out = fn(src)
        out.check()
        assert dense_equal(out.to_dense(), DENSE)


class TestTacoStyle:
    def test_coo_to_csr_handles_unsorted(self):
        out = taco_style.coo_to_csr(shuffled(COO, seed=1))
        # Row grouping is correct even from unsorted input.
        assert out.rowptr == CSR.rowptr
        assert dense_equal(out.to_dense(), DENSE)

    def test_csr_to_dia_matches_direct(self):
        a = taco_style.coo_to_dia(COO)
        b = taco_style.csr_to_dia(CSR)
        assert a.off == b.off
        assert a.data == b.data

    def test_dia_offsets_sorted(self):
        out = taco_style.coo_to_dia(COO)
        assert out.off == sorted(out.off)


class TestSparskitStyle:
    def test_coocsr_rowptr_shift_idiom(self):
        out = sparskit_style.coocsr(COO)
        assert out.rowptr[0] == 0
        assert out.rowptr[-1] == COO.nnz

    def test_coocsc_via_intermediary(self):
        direct = taco_style.coo_to_csc(COO)
        via_csr = sparskit_style.coocsc(COO)
        assert via_csr.colptr == direct.colptr
        assert via_csr.row == direct.row

    def test_csrdia_exact(self):
        out = sparskit_style.csrdia(CSR)
        out.check()
        assert dense_equal(out.to_dense(), DENSE)


class TestMklStyle:
    def test_sorting_normalizes_unsorted_input(self):
        out = mkl_style.coo_to_csr(shuffled(COO, seed=2))
        out.check()  # canonical order guaranteed
        assert dense_equal(out.to_dense(), DENSE)

    def test_csc_from_unsorted(self):
        out = mkl_style.coo_to_csc(shuffled(COO, seed=3))
        out.check()
        assert dense_equal(out.to_dense(), DENSE)

    def test_dia_via_csr(self):
        out = mkl_style.coo_to_dia(COO)
        out.check()
        assert dense_equal(out.to_dense(), DENSE)


class TestHicoo:
    def make_tensor(self, nnz=80, seed=0):
        return synthetic_tensor3d((32, 24, 16), nnz, seed=seed)

    def test_blocked_equals_whole_tensor_sort(self):
        t = self.make_tensor(seed=1)
        blocked = blocked_morton_sort(t, block_bits=3)
        whole = whole_tensor_morton_sort(t)
        assert (blocked.row, blocked.col, blocked.z, blocked.val) == (
            whole.row, whole.col, whole.z, whole.val,
        )

    @pytest.mark.parametrize("bits", [1, 2, 4, 6])
    def test_any_block_size_valid(self, bits):
        t = self.make_tensor(seed=2)
        out = blocked_morton_sort(t, block_bits=bits)
        out.check()
        assert out.to_dict() == t.to_dict()

    def test_invalid_block_bits(self):
        with pytest.raises(ValueError):
            blocked_morton_sort(self.make_tensor(), block_bits=0)

    def test_preserves_nnz(self):
        t = self.make_tensor(seed=3)
        assert blocked_morton_sort(t).nnz == t.nnz
