"""Unit tests for workload generation and the Table 3/4 catalogs."""

import pytest

from repro.datagen import (
    BY_NAME,
    DIA_SUBSET,
    TABLE3,
    TABLE4,
    banded,
    fem_blocks,
    load,
    load_tensor,
    power_law,
    random_uniform,
    shuffled,
    stencil_offsets,
    synthetic_tensor3d,
)


class TestStencilOffsets:
    def test_count(self):
        for nd in (1, 3, 5, 7, 13, 22):
            assert len(stencil_offsets(nd, spread=10)) == nd

    def test_sorted_unique(self):
        offs = stencil_offsets(9, spread=8)
        assert offs == sorted(set(offs))

    def test_contains_main_diagonal(self):
        assert 0 in stencil_offsets(5, spread=6)

    def test_bounded_spread(self):
        offs = stencil_offsets(22, spread=13)
        assert max(abs(o) for o in offs) < 13 * 8

    def test_invalid(self):
        with pytest.raises(ValueError):
            stencil_offsets(0)


class TestGenerators:
    def test_banded_diag_count(self):
        m = banded(50, 50, [-3, 0, 3])
        m.check()
        diags = {j - i for i, j in zip(m.row, m.col)}
        assert diags == {-3, 0, 3}

    def test_banded_density_thins(self):
        full = banded(60, 60, [0, 1], density=1.0, seed=1)
        thin = banded(60, 60, [0, 1], density=0.5, seed=1)
        assert thin.nnz < full.nnz
        assert thin.nnz > 0

    def test_banded_sorted(self):
        assert banded(30, 30, [-1, 0, 1]).is_sorted_lexicographic()

    def test_fem_square_and_sorted(self):
        m = fem_blocks(60, block=4, blocks_per_row=3, seed=2)
        m.check()
        assert m.nrows == m.ncols == 60
        assert m.is_sorted_lexicographic()

    def test_power_law_nnz(self):
        m = power_law(100, 100, 300, seed=3)
        m.check()
        assert 250 <= m.nnz <= 300

    def test_power_law_skewed_rows(self):
        m = power_law(200, 200, 800, alpha=2.5, seed=4)
        counts = [0] * 200
        for i in m.row:
            counts[i] += 1
        top_decile = sum(sorted(counts, reverse=True)[:20])
        assert top_decile > m.nnz * 0.3  # heavy rows dominate

    def test_random_uniform(self):
        m = random_uniform(20, 20, 50, seed=5)
        m.check()
        assert m.nnz == 50

    def test_random_uniform_capacity_check(self):
        with pytest.raises(ValueError):
            random_uniform(2, 2, 10)

    def test_shuffled_permutes(self):
        m = random_uniform(20, 20, 60, seed=6)
        s = shuffled(m, seed=7)
        assert not s.is_sorted_lexicographic()
        assert s.sorted_lexicographic().row == m.row

    def test_determinism(self):
        a = power_law(50, 50, 100, seed=8)
        b = power_law(50, 50, 100, seed=8)
        assert a.row == b.row and a.val == b.val


class TestCatalog:
    def test_21_matrices(self):
        assert len(TABLE3) == 21
        assert len(BY_NAME) == 21

    def test_paper_diagonal_counts(self):
        assert BY_NAME["majorbasis"].ndiags == 22
        assert BY_NAME["ecology1"].ndiags == 5

    def test_dia_subset_is_banded(self):
        for name in DIA_SUBSET:
            assert BY_NAME[name].family == "banded"

    def test_load_every_matrix(self):
        for info in TABLE3:
            m = load(info.name, scale=0.0005)
            m.check()
            assert m.nnz > 0
            assert m.is_sorted_lexicographic()

    def test_banded_loads_match_catalog_diagonals(self):
        for name in ("majorbasis", "ecology1", "Baumann"):
            m = load(name, scale=0.002)
            diags = len({j - i for i, j in zip(m.row, m.col)})
            assert diags == BY_NAME[name].ndiags

    def test_scale_controls_size(self):
        small = load("ecology1", scale=0.0005)
        large = load("ecology1", scale=0.002)
        assert large.nnz > small.nnz

    def test_unknown_matrix(self):
        with pytest.raises(KeyError):
            load("nd24k")


class TestTensors:
    def test_table4_has_three_tensors(self):
        assert [t.name for t in TABLE4] == ["darpa", "fb-m", "fb-s"]

    def test_load_tensor(self):
        t = load_tensor("darpa", scale=0.00001)
        t.check()
        assert t.nnz > 0

    def test_synthetic_tensor_nnz(self):
        t = synthetic_tensor3d((16, 16, 16), 100, seed=1)
        t.check()
        assert t.nnz == 100

    def test_capacity_guard(self):
        with pytest.raises(ValueError):
            synthetic_tensor3d((2, 2, 2), 100)

    def test_unknown_tensor(self):
        with pytest.raises(KeyError):
            load_tensor("nell-2")

    def test_determinism(self):
        a = synthetic_tensor3d((16, 16, 16), 64, seed=9)
        b = synthetic_tensor3d((16, 16, 16), 64, seed=9)
        assert a.row == b.row and a.val == b.val
