"""Tests for the conversion amortization analysis."""

import math

import pytest

from repro.datagen import banded, stencil_offsets
from repro.evalharness import (
    Amortization,
    amortization_report,
    measure_amortization,
)


@pytest.fixture(scope="module")
def matrix():
    return banded(150, 150, stencil_offsets(5, spread=13), seed=4)


class TestAmortizationMath:
    def make(self, convert_s, src_s, dst_s):
        gain = src_s - dst_s
        return Amortization(
            "SCOO", "CSR", "spmv", convert_s, src_s, dst_s,
            convert_s / gain if gain > 0 else math.inf,
        )

    def test_breakeven_crossover(self):
        a = self.make(convert_s=10.0, src_s=3.0, dst_s=1.0)
        assert a.breakeven == pytest.approx(5.0)
        assert a.plan(4) == "stay"
        assert a.plan(6) == "convert"

    def test_never_pays_off(self):
        a = self.make(convert_s=10.0, src_s=1.0, dst_s=2.0)
        assert math.isinf(a.breakeven)
        assert a.plan(10_000) == "stay"

    def test_total_cost(self):
        a = self.make(convert_s=10.0, src_s=3.0, dst_s=1.0)
        assert a.total_cost(6, "convert") == pytest.approx(16.0)
        assert a.total_cost(6, "stay") == pytest.approx(18.0)
        assert a.total_cost(6) == pytest.approx(16.0)  # picks the cheaper


class TestMeasurement:
    def test_measures_positive_times(self, matrix):
        a = measure_amortization(matrix, "CSR", repeats=1)
        assert a.convert_s > 0
        assert a.kernel_src_s > 0
        assert a.kernel_dst_s > 0
        assert a.src_format == "SCOO"
        assert a.dst_format == "CSR"

    def test_csr_spmv_beats_coo_spmv(self, matrix):
        # CSR SpMV avoids re-reading row indices: conversion must pay off
        # for *some* finite repetition count.
        a = measure_amortization(matrix, "CSR", repeats=2)
        assert math.isfinite(a.breakeven)

    def test_report_renders(self, matrix):
        text = amortization_report(matrix, destinations=("CSR",), repeats=1)
        assert "SCOO->CSR" in text
        assert "breakeven_reps" in text

    def test_value_sum_kernel(self, matrix):
        a = measure_amortization(matrix, "CSR", kernel="value_sum",
                                 repeats=1)
        assert a.kernel == "value_sum"
