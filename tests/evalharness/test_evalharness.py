"""Unit tests for the evaluation harness (timing, reporting, experiments)."""

import math

import pytest

from repro.evalharness import (
    CONVERSIONS,
    geomean,
    render_speedups,
    render_table,
    render_table5,
    run_conversion_experiment,
    run_fig2c,
    run_fig2d,
    run_fig3,
    run_table4,
    speedup_table,
    table5_rows,
    this_work_support,
    time_fn,
    time_fn_stats,
)


class TestTiming:
    def test_time_fn_positive(self):
        assert time_fn(lambda: sum(range(100))) > 0

    def test_time_fn_passes_args(self):
        # One warm-up call plus two measured calls.
        calls = []
        time_fn(calls.append, 1, repeats=2)
        assert calls == [1, 1, 1]

    def test_time_fn_no_warmup(self):
        calls = []
        time_fn(calls.append, 1, repeats=2, warmup=0)
        assert calls == [1, 1]

    def test_time_fn_stats(self):
        stats = time_fn_stats(lambda: sum(range(100)), repeats=5)
        assert stats.repeats == 5
        assert len(stats.samples) == 5
        assert 0 < stats.min <= stats.median <= max(stats.samples)
        assert stats.min == min(stats.samples)

    def test_geomean(self):
        assert geomean([1, 4]) == pytest.approx(2.0)
        assert geomean([2, 2, 2]) == pytest.approx(2.0)

    def test_geomean_empty_is_nan(self):
        assert math.isnan(geomean([]))

    def test_speedup_table(self):
        out = speedup_table([1.0, 1.0], {"base": [2.0, 8.0]})
        assert out["base"] == pytest.approx(4.0)


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [[1, 2.5], [10, 0.25]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_float_formatting(self):
        text = render_table(["x"], [[0.000012345]])
        assert "e" in text.splitlines()[-1]

    def test_render_speedups_direction(self):
        text = render_speedups({"taco": 2.0, "mkl": 0.5})
        assert "2.00x faster" in text
        assert "2.00x slower" in text


class TestTable5:
    def test_this_work_row_computed_true(self):
        row = this_work_support()
        assert row.mapping and row.reorder and row.universal_quantifiers

    def test_rows_match_paper(self):
        rows = {r.tool: r for r in table5_rows()}
        assert rows["TACO"].mapping and not rows["TACO"].reorder
        assert not rows["Nandy et al."].mapping
        assert rows["Nandy et al."].universal_quantifiers
        assert rows["This work"].mapping and rows["This work"].reorder

    def test_render(self):
        text = render_table5()
        assert "TACO" in text and "This work" in text


class TestExperiments:
    """Small-scale smoke runs of every experiment driver with verification."""

    SMALL = dict(scale=0.0005, repeats=1, matrices=["jnlbrng1", "majorbasis"])

    def test_conversions_table(self):
        assert set(CONVERSIONS) == {"COO_CSR", "COO_CSC", "CSR_CSC", "COO_DIA"}

    @pytest.mark.parametrize("conversion", sorted(CONVERSIONS))
    def test_each_conversion_runs_and_verifies(self, conversion):
        result = run_conversion_experiment(conversion, **self.SMALL)
        assert len(result.rows) == 2
        assert set(result.speedups) == {"taco", "sparskit", "mkl"}
        assert all(v > 0 for v in result.speedups.values())

    def test_multi_backend_columns(self):
        result = run_conversion_experiment(
            "COO_CSR", backends=("python", "numpy"), **self.SMALL
        )
        assert "ours_python_ms" in result.headers
        assert "ours_numpy_ms" in result.headers
        assert set(result.speedups) == {"taco", "sparskit", "mkl"}
        assert any("numpy backend" in note for note in result.notes)

    def test_report_renders(self):
        result = run_fig2c(**self.SMALL)
        text = result.report()
        assert "jnlbrng1" in text
        assert "geomean" in text

    def test_fig3_uses_binary_search(self):
        result = run_fig3(**self.SMALL)
        assert "binary search" in result.experiment

    def test_fig2d_and_fig3_same_workload(self):
        naive = run_fig2d(**self.SMALL)
        fast = run_fig3(**self.SMALL)
        assert [r[0] for r in naive.rows] == [r[0] for r in fast.rows]

    def test_table4_runs_and_verifies(self):
        result = run_table4(scale=0.000004, repeats=1, tensors=["darpa"])
        assert len(result.rows) == 1
        assert result.rows[0][-1] > 0  # ours/hicoo ratio

    def test_unknown_conversion_rejected(self):
        with pytest.raises(KeyError):
            run_conversion_experiment("COO_ELL")
