"""Unit tests for container <-> descriptor bindings."""

import pytest

from repro.formats import (
    BindingError,
    container_format,
    container_to_env,
    outputs_to_container,
)
from repro.runtime import (
    BCSRMatrix,
    COOMatrix,
    COOTensor3D,
    CSCMatrix,
    CSRMatrix,
    DIAMatrix,
    MortonCOOMatrix,
    MortonCOOTensor3D,
)

DENSE = [[1.0, 0.0], [2.0, 3.0]]


class TestContainerFormat:
    def test_sorted_coo_is_scoo(self):
        assert container_format(COOMatrix.from_dense(DENSE)) == "SCOO"

    def test_unsorted_coo_is_coo(self):
        coo = COOMatrix(2, 2, [1, 0], [0, 0], [2.0, 1.0])
        assert container_format(coo) == "COO"

    def test_assume_sorted_false(self):
        coo = COOMatrix.from_dense(DENSE)
        assert container_format(coo, assume_sorted=False) == "COO"

    def test_other_formats(self):
        assert container_format(CSRMatrix.from_dense(DENSE)) == "CSR"
        assert container_format(CSCMatrix.from_dense(DENSE)) == "CSC"
        assert container_format(DIAMatrix.from_dense(DENSE)) == "DIA"
        assert container_format(
            MortonCOOMatrix.from_coo(COOMatrix.from_dense(DENSE))
        ) == "MCOO"

    def test_tensor_formats(self):
        t = COOTensor3D((2, 2, 2), [0, 1], [0, 1], [0, 1], [1.0, 2.0])
        assert container_format(t) == "SCOO3D"
        unsorted = COOTensor3D((2, 2, 2), [1, 0], [1, 0], [1, 0], [2.0, 1.0])
        assert container_format(unsorted) == "COO3D"
        assert container_format(MortonCOOTensor3D.from_coo(t)) == "MCOO3"

    def test_unknown_container(self):
        with pytest.raises(BindingError):
            container_format(object())


class TestContainerToEnv:
    def test_coo_env(self):
        coo = COOMatrix.from_dense(DENSE)
        env = container_to_env(coo)
        assert env["row1"] == coo.row
        assert env["NNZ"] == 3
        assert env["NR"] == 2 and env["NC"] == 2

    def test_csr_env(self):
        csr = CSRMatrix.from_dense(DENSE)
        env = container_to_env(csr)
        assert env["rowptr"] == csr.rowptr
        assert env["col2"] == csr.col
        assert env["Asrc"] == csr.val

    def test_dia_env(self):
        dia = DIAMatrix.from_dense(DENSE)
        env = container_to_env(dia)
        assert env["off"] == dia.off
        assert env["ND"] == dia.ndiags

    def test_bcsr_env(self):
        bcsr = BCSRMatrix.from_dense(DENSE, bsize=2)
        env = container_to_env(bcsr)
        assert env["browptr"] == bcsr.browptr
        assert env["NBR"] == 1

    def test_tensor_env(self):
        t = COOTensor3D((2, 3, 4), [0], [1], [2], [1.0])
        env = container_to_env(t)
        assert env["NZ"] == 4
        assert env["z1"] == [2]


class TestOutputsToContainer:
    def test_csr_outputs(self):
        outputs = {"rowptr": [0, 1, 3], "col2": [0, 0, 1],
                   "Adst": [1.0, 2.0, 3.0]}
        m = outputs_to_container("CSR", outputs, {}, {"NR": 2, "NC": 2})
        assert isinstance(m, CSRMatrix)
        m.check()

    def test_uf_output_map_translates_names(self):
        outputs = {"rowptr2": [0, 1, 3], "col22": [0, 0, 1],
                   "Adst": [1.0, 2.0, 3.0]}
        m = outputs_to_container(
            "CSR", outputs, {"rowptr": "rowptr2", "col2": "col22"},
            {"NR": 2, "NC": 2},
        )
        assert m.rowptr == [0, 1, 3]

    def test_unknown_format(self):
        with pytest.raises(BindingError):
            outputs_to_container("ESB", {"Adst": []}, {}, {})
