"""Unit tests for container <-> descriptor bindings."""

import pytest

from repro.formats import (
    BindingError,
    container_format,
    container_to_env,
    outputs_to_container,
)
from repro.runtime import (
    BCSRMatrix,
    COOMatrix,
    COOTensor3D,
    CSCMatrix,
    CSRMatrix,
    DIAMatrix,
    MortonCOOMatrix,
    MortonCOOTensor3D,
)

DENSE = [[1.0, 0.0], [2.0, 3.0]]


class TestContainerFormat:
    def test_sorted_coo_is_scoo(self):
        assert container_format(COOMatrix.from_dense(DENSE)) == "SCOO"

    def test_unsorted_coo_is_coo(self):
        coo = COOMatrix(2, 2, [1, 0], [0, 0], [2.0, 1.0])
        assert container_format(coo) == "COO"

    def test_assume_sorted_false(self):
        coo = COOMatrix.from_dense(DENSE)
        assert container_format(coo, assume_sorted=False) == "COO"

    def test_other_formats(self):
        assert container_format(CSRMatrix.from_dense(DENSE)) == "CSR"
        assert container_format(CSCMatrix.from_dense(DENSE)) == "CSC"
        assert container_format(DIAMatrix.from_dense(DENSE)) == "DIA"
        assert container_format(
            MortonCOOMatrix.from_coo(COOMatrix.from_dense(DENSE))
        ) == "MCOO"

    def test_tensor_formats(self):
        t = COOTensor3D((2, 2, 2), [0, 1], [0, 1], [0, 1], [1.0, 2.0])
        assert container_format(t) == "SCOO3D"
        unsorted = COOTensor3D((2, 2, 2), [1, 0], [1, 0], [1, 0], [2.0, 1.0])
        assert container_format(unsorted) == "COO3D"
        assert container_format(MortonCOOTensor3D.from_coo(t)) == "MCOO3"

    def test_unknown_container(self):
        with pytest.raises(BindingError):
            container_format(object())


class TestContainerToEnv:
    def test_coo_env(self):
        coo = COOMatrix.from_dense(DENSE)
        env = container_to_env(coo)
        assert env["row1"] == coo.row
        assert env["NNZ"] == 3
        assert env["NR"] == 2 and env["NC"] == 2

    def test_csr_env(self):
        csr = CSRMatrix.from_dense(DENSE)
        env = container_to_env(csr)
        assert env["rowptr"] == csr.rowptr
        assert env["col2"] == csr.col
        assert env["Asrc"] == csr.val

    def test_dia_env(self):
        dia = DIAMatrix.from_dense(DENSE)
        env = container_to_env(dia)
        assert env["off"] == dia.off
        assert env["ND"] == dia.ndiags

    def test_bcsr_env(self):
        bcsr = BCSRMatrix.from_dense(DENSE, bsize=2)
        env = container_to_env(bcsr)
        assert env["browptr"] == bcsr.browptr
        assert env["NBR"] == 1

    def test_tensor_env(self):
        t = COOTensor3D((2, 3, 4), [0], [1], [2], [1.0])
        env = container_to_env(t)
        assert env["NZ"] == 4
        assert env["z1"] == [2]


class TestOutputsToContainer:
    def test_csr_outputs(self):
        outputs = {"rowptr": [0, 1, 3], "col2": [0, 0, 1],
                   "Adst": [1.0, 2.0, 3.0]}
        m = outputs_to_container("CSR", outputs, {}, {"NR": 2, "NC": 2})
        assert isinstance(m, CSRMatrix)
        m.check()

    def test_uf_output_map_translates_names(self):
        outputs = {"rowptr2": [0, 1, 3], "col22": [0, 0, 1],
                   "Adst": [1.0, 2.0, 3.0]}
        m = outputs_to_container(
            "CSR", outputs, {"rowptr": "rowptr2", "col2": "col22"},
            {"NR": 2, "NC": 2},
        )
        assert m.rowptr == [0, 1, 3]

    def test_unknown_format(self):
        with pytest.raises(BindingError):
            outputs_to_container("ESB", {"Adst": []}, {}, {})

class TestLevelDrivenBindings:
    """Bindings resolved from level structure, not hand-written tables."""

    def test_env_matches_legacy_path(self):
        from repro.formats.bindings import _legacy_container_to_env
        from repro.runtime import ELLMatrix

        dense = [[1.0, 0.0, 2.0], [0.0, 3.0, 0.0], [4.0, 5.0, 6.0]]
        containers = [
            COOMatrix.from_dense(dense),
            CSRMatrix.from_dense(dense),
            CSCMatrix.from_dense(dense),
            DIAMatrix.from_dense(dense),
            BCSRMatrix.from_dense(dense, 2),
            ELLMatrix.from_dense(dense),
        ]
        for container in containers:
            assert container_to_env(container) == \
                _legacy_container_to_env(container)

    def test_parameterized_block_sizes_bind(self):
        """Regression: BCSR{k}/BCSC{k} names must bind the right arrays."""
        from repro.runtime import BCSCMatrix

        dense = [[float(i * 5 + j + 1) if (i + j) % 3 else 0.0
                  for j in range(5)] for i in range(5)]
        for bsize in (2, 3, 4):
            bcsr = BCSRMatrix.from_dense(dense, bsize)
            env = container_to_env(bcsr)
            assert env["browptr"] == bcsr.browptr
            assert env["bcol"] == bcsr.bcol
            assert env["NB"] == bcsr.nblocks
            bcsc = BCSCMatrix.from_dense(dense, bsize)
            env = container_to_env(bcsc)
            assert env["bcolptr"] == bcsc.bcolptr
            assert env["brow"] == bcsc.brow
            assert env["NB"] == bcsc.nblocks

    def test_padded_ell_binds_width_and_sentinel(self):
        from repro.runtime import ELLMatrix

        dense = [[1.0, 0.0, 2.0], [0.0, 3.0, 0.0]]
        # Over-allocated width: the padded level must bind W from the
        # container, not recompute the max row length.
        ell = ELLMatrix.from_dense(dense, width=4)
        env = container_to_env(ell)
        assert env["W"] == 4
        assert env["ellcol"] == ell.col

    def test_dcsr_env(self):
        from repro.runtime import DCSRMatrix

        dense = [[0.0, 1.0], [0.0, 0.0], [2.0, 3.0]]
        dcsr = DCSRMatrix.from_dense(dense)
        env = container_to_env(dcsr)
        assert env["rowidx"] == [0, 2]
        assert env["dptr"] == dcsr.dptr
        assert env["dcol"] == dcsr.dcol
        assert env["NDR"] == 2
        assert container_format(dcsr) == "DCSR"

    def test_bcsc_env(self):
        from repro.runtime import BCSCMatrix

        dense = [[1.0, 0.0], [0.0, 2.0]]
        bcsc = BCSCMatrix.from_dense(dense, 2)
        env = container_to_env(bcsc)
        assert env["NBC"] == 1 and env["NBR"] == 1
        assert container_format(bcsc) == "BCSC"

    def test_register_container_round_trip(self):
        from repro.formats.bindings import register_container

        class FakeCSR(CSRMatrix):
            pass

        register_container(
            FakeCSR, "CSR",
            lambda c: [None, {"ptr": c.rowptr, "idx": c.col}],
        )
        try:
            fake = FakeCSR.from_dense(DENSE)
            assert container_format(fake) == "CSR"
            assert container_to_env(fake)["rowptr"] == fake.rowptr
        finally:
            from repro.formats.bindings import _CONTAINERS

            _CONTAINERS[:] = [(cls, b) for cls, b in _CONTAINERS
                              if cls is not FakeCSR]

    def test_blocked_destination_builders(self):
        from repro.runtime import BCSCMatrix

        outputs = {"bcolptr": [0, 1], "brow": [0],
                   "Adst": [1.0, 0.0, 0.0, 2.0]}
        m = outputs_to_container("BCSC", outputs, {}, {"NR": 2, "NC": 2})
        assert isinstance(m, BCSCMatrix)
        m.check()
        # Parameterized names materialize the suffix block size.
        outputs3 = {"bcolptr": [0, 1], "brow": [0],
                    "Adst": [1.0] + [0.0] * 8}
        m3 = outputs_to_container("BCSC3", outputs3, {},
                                  {"NR": 3, "NC": 3})
        assert m3.bsize == 3
