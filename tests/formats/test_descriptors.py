"""Unit tests for format descriptors and the Table 1 library."""

import pytest

from repro.formats import (
    FormatDescriptor,
    FormatError,
    all_formats,
    bcsr,
    coo,
    coo3d,
    csc,
    csr,
    dia,
    get_format,
    mcoo,
    mcoo3,
    scoo,
)
from repro.ir import MonotonicQuantifier, lexicographic


class TestDescriptorValidation:
    def test_sparse_to_dense_must_be_function(self):
        with pytest.raises(FormatError):
            FormatDescriptor(
                name="BAD",
                sparse_to_dense="{[n] -> [i, j] : i = row(n)}",
                data_access="{[n] -> [nd] : nd = n}",
                uf_domains={"row": "{[x] : 0 <= x < NNZ}"},
                uf_ranges={"row": "{[i] : 0 <= i < NR}"},
            )

    def test_undeclared_uf_rejected(self):
        with pytest.raises(FormatError):
            FormatDescriptor(
                name="BAD",
                sparse_to_dense="{[n] -> [i] : i = row(n)}",
                data_access="{[n] -> [nd] : nd = n}",
            )

    def test_data_access_tuple_must_match(self):
        with pytest.raises(FormatError):
            FormatDescriptor(
                name="BAD",
                sparse_to_dense="{[n] -> [i] : i = row(n)}",
                data_access="{[m] -> [nd] : nd = m}",
                uf_domains={"row": "{[x] : 0 <= x < NNZ}"},
                uf_ranges={"row": "{[i] : 0 <= i < NR}"},
            )

    def test_ordering_vars_must_cover_dense_space(self):
        with pytest.raises(FormatError):
            FormatDescriptor(
                name="BAD",
                sparse_to_dense="{[n] -> [i] : i = row(n)}",
                data_access="{[n] -> [nd] : nd = n}",
                uf_domains={"row": "{[x] : 0 <= x < NNZ}"},
                uf_ranges={"row": "{[i] : 0 <= i < NR}"},
                ordering=lexicographic(["i", "j"]),
            )


class TestLibrary:
    def test_all_formats_construct(self):
        formats = all_formats()
        assert len(formats) >= 9
        names = {f.name for f in formats}
        assert {"COO", "SCOO", "MCOO", "CSR", "CSC", "DIA",
                "COO3D", "MCOO3"} <= names

    def test_get_format_case_insensitive(self):
        assert get_format("csr").name == "CSR"
        assert get_format("CsC").name == "CSC"

    def test_get_format_unknown(self):
        with pytest.raises(KeyError):
            get_format("ESB")

    def test_coo_has_no_ordering(self):
        assert coo().ordering is None

    def test_scoo_is_lexicographic(self):
        fmt = scoo()
        assert fmt.ordering == lexicographic(["i", "j"])

    def test_mcoo_ordering_is_morton(self):
        fmt = mcoo()
        assert fmt.ordering is not None
        assert fmt.ordering.uf_names() == {"MORTON"}

    def test_mcoo_user_function_detection(self):
        # MORTON appears only in the quantifier: it is user-defined.
        assert mcoo().user_function_names() == {"MORTON"}
        assert csr().user_function_names() == set()

    def test_csr_quantifiers(self):
        fmt = csr()
        assert fmt.monotonic["rowptr"] == MonotonicQuantifier("rowptr")
        assert fmt.ordering == lexicographic(["i", "j"])

    def test_csc_orders_column_major(self):
        fmt = csc()
        assert [str(k) for k in fmt.ordering.key_exprs] == ["j", "i"]

    def test_dia_offsets_strictly_monotonic(self):
        fmt = dia()
        q = fmt.monotonic["off"]
        assert q.strict

    def test_dia_data_access_is_nd_ii_plus_d(self):
        fmt = dia()
        assert "ND * (ii)" in str(fmt.data_access)

    def test_rank(self):
        assert coo().rank == 2
        assert coo3d().rank == 3

    def test_index_ufs(self):
        assert csr().index_ufs() == {"rowptr", "col2"}
        assert dia().index_ufs() == {"off"}

    def test_size_symbols(self):
        assert csr().size_symbols() == {"NR", "NC", "NNZ"}
        assert dia().derived_size_symbols() == {"ND"}

    def test_shape_symbols_are_required_inputs(self):
        # The paper: shape cannot be derived from a sparse format.
        for fmt in all_formats():
            assert set(fmt.shape_syms) <= fmt.size_symbols()
            assert not (set(fmt.shape_syms) & fmt.derived_size_symbols())

    def test_bcsr_block_size(self):
        fmt = bcsr(4)
        assert fmt.name == "BCSR4"
        assert "4 * bi" in str(fmt.sparse_to_dense).replace("4 bi", "4 * bi")

    def test_bcsr_invalid_block(self):
        with pytest.raises(ValueError):
            bcsr(0)

    def test_mcoo3_uses_three_coordinate_ufs(self):
        fmt = mcoo3()
        assert fmt.index_ufs() == {"row_m", "col_m", "z_m"}


class TestDisplay:
    def test_table1_style_output(self):
        text = mcoo().display()
        assert "MCOO" in text
        assert "domain(row_m)" in text
        assert "MORTON(row_m(n1), col_m(n1))" in text

    def test_csr_display_has_monotonic_quantifier(self):
        text = csr().display()
        assert "rowptr(e1) <= rowptr(e2)" in text

    def test_all_formats_display_without_error(self):
        for fmt in all_formats():
            text = fmt.display()
            assert fmt.name in text
            assert "map:" in text


class TestRenameDisjoint:
    def test_suffix_applied_everywhere(self):
        fmt = csr().rename_disjoint("_x")
        assert fmt.index_ufs() == {"rowptr_x", "col2_x"}
        assert "rowptr_x" in fmt.monotonic
        assert set(fmt.sparse_vars) == {"ii_x", "k_x", "jj_x"}

    def test_rename_preserves_validity(self):
        fmt = dia().rename_disjoint("_y")
        assert fmt.sparse_to_dense.is_function_syntactically()
