"""Hand-written descriptor oracles pinning the level-composed library.

Every library format used to be spelled out as explicit SPF relations;
the level-composition DSL (:mod:`repro.formats.levels`) replaced those
definitions with one-line compositions.  The hand-written forms survive
here as oracles: each one must stay *structurally equal* — relation
strings, UF domains/ranges, quantifiers, coordinate UFs, shape symbols
and position variable — to its composed replacement, so any drift in the
composition emitters is caught against the original ground truth.
"""

from __future__ import annotations

import pytest

from repro.formats import get_format
from repro.formats.descriptor import FormatDescriptor
from repro.ir import (
    FloorDiv,
    MonotonicQuantifier,
    OrderingQuantifier,
    Var,
    lexicographic,
    morton,
)


# ----------------------------------------------------------------------
# The original hand-written library, verbatim.


def hand_coo(*, sorted_lex=False, name=None):
    return FormatDescriptor(
        name=name or ("SCOO" if sorted_lex else "COO"),
        sparse_to_dense=(
            "{[n, ii, jj] -> [i, j] : row1(n) = i && col1(n) = j && ii = i"
            " && jj = j && 0 <= i < NR && 0 <= j < NC && 0 <= n < NNZ}"
        ),
        data_access="{[n, ii, jj] -> [nd] : nd = n}",
        uf_domains={
            "row1": "{[x] : 0 <= x < NNZ}",
            "col1": "{[x] : 0 <= x < NNZ}",
        },
        uf_ranges={
            "row1": "{[i] : 0 <= i < NR}",
            "col1": "{[i] : 0 <= i < NC}",
        },
        ordering=lexicographic(["i", "j"]) if sorted_lex else None,
        coord_ufs={"i": "row1", "j": "col1"},
        shape_syms=["NR", "NC"],
        position_var="n",
        description=(
            "Coordinate format"
            + (", sorted lexicographically row-first" if sorted_lex else "")
        ),
    )


def hand_mcoo():
    return FormatDescriptor(
        name="MCOO",
        sparse_to_dense=(
            "{[n, ii, jj] -> [i, j] : row_m(n) = i && col_m(n) = j && ii = i"
            " && jj = j && 0 <= i < NR && 0 <= j < NC && 0 <= n < NNZ}"
        ),
        data_access="{[n, ii, jj] -> [nd] : nd = n}",
        uf_domains={
            "row_m": "{[x] : 0 <= x < NNZ}",
            "col_m": "{[x] : 0 <= x < NNZ}",
        },
        uf_ranges={
            "row_m": "{[i] : 0 <= i < NR}",
            "col_m": "{[i] : 0 <= i < NC}",
        },
        ordering=morton(["i", "j"]),
        coord_ufs={"i": "row_m", "j": "col_m"},
        shape_syms=["NR", "NC"],
        position_var="n",
        description="COO sorted by the Morton (Z-order) curve",
    )


def hand_coo3d(*, sorted_lex=False):
    return FormatDescriptor(
        name="SCOO3D" if sorted_lex else "COO3D",
        sparse_to_dense=(
            "{[n, ii, jj, kk] -> [i, j, k] : row1(n) = i && col1(n) = j"
            " && z1(n) = k && ii = i && jj = j && kk = k && 0 <= i < NR"
            " && 0 <= j < NC && 0 <= k < NZ && 0 <= n < NNZ}"
        ),
        data_access="{[n, ii, jj, kk] -> [nd] : nd = n}",
        uf_domains={
            "row1": "{[x] : 0 <= x < NNZ}",
            "col1": "{[x] : 0 <= x < NNZ}",
            "z1": "{[x] : 0 <= x < NNZ}",
        },
        uf_ranges={
            "row1": "{[i] : 0 <= i < NR}",
            "col1": "{[i] : 0 <= i < NC}",
            "z1": "{[i] : 0 <= i < NZ}",
        },
        ordering=lexicographic(["i", "j", "k"]) if sorted_lex else None,
        coord_ufs={"i": "row1", "j": "col1", "k": "z1"},
        shape_syms=["NR", "NC", "NZ"],
        position_var="n",
        description="3-D coordinate format",
    )


def hand_mcoo3():
    return FormatDescriptor(
        name="MCOO3",
        sparse_to_dense=(
            "{[n, ii, jj, kk] -> [i, j, k] : row_m(n) = i && col_m(n) = j"
            " && z_m(n) = k && ii = i && jj = j && kk = k && 0 <= i < NR"
            " && 0 <= j < NC && 0 <= k < NZ && 0 <= n < NNZ}"
        ),
        data_access="{[n, ii, jj, kk] -> [nd] : nd = n}",
        uf_domains={
            "row_m": "{[x] : 0 <= x < NNZ}",
            "col_m": "{[x] : 0 <= x < NNZ}",
            "z_m": "{[x] : 0 <= x < NNZ}",
        },
        uf_ranges={
            "row_m": "{[i] : 0 <= i < NR}",
            "col_m": "{[i] : 0 <= i < NC}",
            "z_m": "{[i] : 0 <= i < NZ}",
        },
        ordering=morton(["i", "j", "k"]),
        coord_ufs={"i": "row_m", "j": "col_m", "k": "z_m"},
        shape_syms=["NR", "NC", "NZ"],
        position_var="n",
        description="3-D COO sorted by the Morton (Z-order) curve",
    )


def hand_csr():
    return FormatDescriptor(
        name="CSR",
        sparse_to_dense=(
            "{[ii, k, jj] -> [i, j] : ii = i && jj = j && col2(k) = j"
            " && 0 <= ii < NR && rowptr(ii) <= k < rowptr(ii + 1)"
            " && 0 <= j < NC}"
        ),
        data_access="{[ii, k, jj] -> [kd] : kd = k}",
        uf_domains={
            "rowptr": "{[x] : 0 <= x <= NR}",
            "col2": "{[x] : 0 <= x < NNZ}",
        },
        uf_ranges={
            "rowptr": "{[n] : 0 <= n <= NNZ}",
            "col2": "{[i] : 0 <= i < NC}",
        },
        monotonic=[MonotonicQuantifier("rowptr")],
        ordering=lexicographic(["i", "j"]),
        coord_ufs={"i": "row_of", "j": "col2"},
        shape_syms=["NR", "NC"],
        position_var="k",
        description="Compressed sparse row",
    )


def hand_csc():
    return FormatDescriptor(
        name="CSC",
        sparse_to_dense=(
            "{[jj, k, ii] -> [i, j] : ii = i && jj = j && row2(k) = i"
            " && 0 <= jj < NC && colptr(jj) <= k < colptr(jj + 1)"
            " && 0 <= i < NR}"
        ),
        data_access="{[jj, k, ii] -> [kd] : kd = k}",
        uf_domains={
            "colptr": "{[x] : 0 <= x <= NC}",
            "row2": "{[x] : 0 <= x < NNZ}",
        },
        uf_ranges={
            "colptr": "{[n] : 0 <= n <= NNZ}",
            "row2": "{[i] : 0 <= i < NR}",
        },
        monotonic=[MonotonicQuantifier("colptr")],
        ordering=lexicographic(["j", "i"]),
        coord_ufs={"i": "row2", "j": "col_of"},
        shape_syms=["NR", "NC"],
        position_var="k",
        description="Compressed sparse column",
    )


def hand_dia():
    return FormatDescriptor(
        name="DIA",
        sparse_to_dense=(
            "{[ii, d, jj] -> [i, j] : i = ii && 0 <= i < NR && 0 <= d < ND"
            " && j = i + off(d) && 0 <= j < NC && jj = j}"
        ),
        data_access="{[ii, d, jj] -> [kd] : kd = ND * ii + d}",
        uf_domains={"off": "{[x] : 0 <= x < ND}"},
        uf_ranges={"off": "{[o] : 0 - NR < o < NC}"},
        monotonic=[MonotonicQuantifier("off", strict=True)],
        coord_ufs={"i": "row_of", "j": "col_of"},
        shape_syms=["NR", "NC"],
        position_var="d",
        description="Diagonal storage, strictly increasing offsets",
    )


def hand_bcsr(block=2):
    b = block
    return FormatDescriptor(
        name=f"BCSR{b}",
        sparse_to_dense=(
            f"{{[bi, bk, ri, ci] -> [i, j] : i = {b} * bi + ri"
            f" && j = {b} * bcol(bk) + ci && 0 <= ri < {b} && 0 <= ci < {b}"
            " && browptr(bi) <= bk < browptr(bi + 1)"
            f" && 0 <= bi <= (NR - 1) // {b}"
            " && 0 <= i < NR && 0 <= j < NC}"
        ),
        data_access=(
            f"{{[bi, bk, ri, ci] -> [kd] : kd = {b * b} * bk + {b} * ri"
            " + ci}"
        ),
        uf_domains={
            "browptr": f"{{[x] : 0 <= x <= (NR - 1) // {b} + 1}}",
            "bcol": "{[x] : 0 <= x < NB}",
        },
        uf_ranges={
            "browptr": "{[n] : 0 <= n <= NB}",
            "bcol": f"{{[c] : 0 <= c <= (NC - 1) // {b}}}",
        },
        monotonic=[MonotonicQuantifier("browptr")],
        ordering=OrderingQuantifier(
            ["i", "j"],
            [FloorDiv(Var("i"), b).as_expr(),
             FloorDiv(Var("j"), b).as_expr()],
            collapse_ties=True,
        ),
        coord_ufs={"i": "brow_of", "j": "bcol_of"},
        shape_syms=["NR", "NC"],
        position_var="bk",
        description=f"Blocked CSR, {b}x{b} dense blocks",
    )


def hand_csf():
    return FormatDescriptor(
        name="CSF",
        sparse_to_dense=(
            "{[ip, jp, kp] -> [i, j, k] : i = rootidx(ip) && j = fibidx(jp)"
            " && k = kidx(kp) && 0 <= ip < NROOT"
            " && fptr(ip) <= jp < fptr(ip + 1)"
            " && kptr(jp) <= kp < kptr(jp + 1)"
            " && 0 <= i < NR && 0 <= j < NC && 0 <= k < NZ}"
        ),
        data_access="{[ip, jp, kp] -> [kd] : kd = kp}",
        uf_domains={
            "rootidx": "{[x] : 0 <= x < NROOT}",
            "fptr": "{[x] : 0 <= x <= NROOT}",
            "fibidx": "{[x] : 0 <= x < NFIB}",
            "kptr": "{[x] : 0 <= x <= NFIB}",
            "kidx": "{[x] : 0 <= x < NNZ}",
        },
        uf_ranges={
            "rootidx": "{[i] : 0 <= i < NR}",
            "fptr": "{[f] : 0 <= f <= NFIB}",
            "fibidx": "{[j] : 0 <= j < NC}",
            "kptr": "{[n] : 0 <= n <= NNZ}",
            "kidx": "{[k] : 0 <= k < NZ}",
        },
        monotonic=[
            MonotonicQuantifier("rootidx", strict=True),
            MonotonicQuantifier("fptr"),
            MonotonicQuantifier("kptr"),
        ],
        ordering=lexicographic(["i", "j", "k"]),
        coord_ufs={"i": "rootidx", "j": "fibidx", "k": "kidx"},
        shape_syms=["NR", "NC", "NZ"],
        position_var="kp",
        description="Compressed sparse fiber, three-level compression",
    )


def hand_ell():
    return FormatDescriptor(
        name="ELL",
        sparse_to_dense=(
            "{[ii, w, jj] -> [i, j] : i = ii && j = ellcol(W * ii + w)"
            " && jj = j && 0 <= ii < NR && 0 <= w < W"
            " && 0 <= j < NC}"
        ),
        data_access="{[ii, w, jj] -> [kd] : kd = W * ii + w}",
        uf_domains={"ellcol": "{[x] : 0 <= x < NR * W}"},
        uf_ranges={"ellcol": "{[j] : 0 - 1 <= j < NC}"},
        ordering=lexicographic(["i", "j"]),
        coord_ufs={"i": "row_of", "j": "ellcol"},
        shape_syms=["NR", "NC"],
        position_var="w",
        description="ELLPACK, fixed width with -1 column padding",
    )


def hand_dcsr():
    return FormatDescriptor(
        name="DCSR",
        sparse_to_dense=(
            "{[ip, jp] -> [i, j] : i = rowidx(ip) && j = dcol(jp)"
            " && 0 <= ip < NDR && dptr(ip) <= jp < dptr(ip + 1)"
            " && 0 <= i < NR && 0 <= j < NC}"
        ),
        data_access="{[ip, jp] -> [kd] : kd = jp}",
        uf_domains={
            "rowidx": "{[x] : 0 <= x < NDR}",
            "dptr": "{[x] : 0 <= x <= NDR}",
            "dcol": "{[x] : 0 <= x < NNZ}",
        },
        uf_ranges={
            "rowidx": "{[i] : 0 <= i < NR}",
            "dptr": "{[n] : 0 <= n <= NNZ}",
            "dcol": "{[j] : 0 <= j < NC}",
        },
        monotonic=[
            MonotonicQuantifier("rowidx", strict=True),
            MonotonicQuantifier("dptr"),
        ],
        ordering=lexicographic(["i", "j"]),
        coord_ufs={"i": "rowidx", "j": "dcol"},
        shape_syms=["NR", "NC"],
        position_var="jp",
        description="Doubly compressed sparse row, empty rows elided",
    )


def hand_bcsc(block=2):
    b = block
    return FormatDescriptor(
        name=f"BCSC{b}",
        sparse_to_dense=(
            f"{{[bj, bk, ri, ci] -> [i, j] : i = {b} * brow(bk) + ri"
            f" && j = {b} * bj + ci && 0 <= ri < {b} && 0 <= ci < {b}"
            " && bcolptr(bj) <= bk < bcolptr(bj + 1)"
            f" && 0 <= bj <= (NC - 1) // {b}"
            " && 0 <= i < NR && 0 <= j < NC}"
        ),
        data_access=(
            f"{{[bj, bk, ri, ci] -> [kd] : kd = {b * b} * bk + {b} * ri"
            " + ci}"
        ),
        uf_domains={
            "bcolptr": f"{{[x] : 0 <= x <= (NC - 1) // {b} + 1}}",
            "brow": "{[x] : 0 <= x < NB}",
        },
        uf_ranges={
            "bcolptr": "{[n] : 0 <= n <= NB}",
            "brow": f"{{[c] : 0 <= c <= (NR - 1) // {b}}}",
        },
        monotonic=[MonotonicQuantifier("bcolptr")],
        ordering=OrderingQuantifier(
            ["i", "j"],
            [FloorDiv(Var("j"), b).as_expr(),
             FloorDiv(Var("i"), b).as_expr()],
            collapse_ties=True,
        ),
        coord_ufs={"i": "brow_of", "j": "bcol_of"},
        shape_syms=["NR", "NC"],
        position_var="bk",
        description=f"Blocked CSC, {b}x{b} dense blocks",
    )


HAND_BUILDERS = {
    "COO": hand_coo,
    "SCOO": lambda: hand_coo(sorted_lex=True),
    "MCOO": hand_mcoo,
    "COO3D": hand_coo3d,
    "SCOO3D": lambda: hand_coo3d(sorted_lex=True),
    "MCOO3": hand_mcoo3,
    "CSR": hand_csr,
    "CSC": hand_csc,
    "DIA": hand_dia,
    "BCSR": hand_bcsr,
    "CSF": hand_csf,
    "ELL": hand_ell,
    "DCSR": hand_dcsr,
    "BCSC": hand_bcsc,
}


# ----------------------------------------------------------------------


def assert_structurally_equal(hand: FormatDescriptor,
                              composed: FormatDescriptor) -> None:
    assert composed.name == hand.name
    assert composed.description == hand.description
    assert str(composed.sparse_to_dense) == str(hand.sparse_to_dense)
    assert str(composed.data_access) == str(hand.data_access)
    assert {u: str(s) for u, s in composed.uf_domains.items()} == \
        {u: str(s) for u, s in hand.uf_domains.items()}
    assert {u: str(s) for u, s in composed.uf_ranges.items()} == \
        {u: str(s) for u, s in hand.uf_ranges.items()}
    assert {u: q.strict for u, q in composed.monotonic.items()} == \
        {u: q.strict for u, q in hand.monotonic.items()}
    if hand.ordering is None:
        assert composed.ordering is None
    else:
        assert composed.ordering is not None
        assert tuple(composed.ordering.dense_vars) == \
            tuple(hand.ordering.dense_vars)
        assert [str(k) for k in composed.ordering.key_exprs] == \
            [str(k) for k in hand.ordering.key_exprs]
        assert composed.ordering.strict == hand.ordering.strict
        assert composed.ordering.collapse_ties == \
            hand.ordering.collapse_ties
    assert dict(composed.coord_ufs) == dict(hand.coord_ufs)
    assert tuple(composed.shape_syms) == tuple(hand.shape_syms)
    assert composed.position_var == hand.position_var


@pytest.mark.parametrize("name", sorted(HAND_BUILDERS))
def test_composed_library_matches_hand_written(name):
    assert_structurally_equal(HAND_BUILDERS[name](), get_format(name))


@pytest.mark.parametrize("block", [3, 4, 5])
@pytest.mark.parametrize("family,builder", [("BCSR", hand_bcsr),
                                            ("BCSC", hand_bcsc)])
def test_parameterized_blocks_match_hand_written(family, builder, block):
    assert_structurally_equal(
        builder(block), get_format(f"{family}{block}")
    )


def test_every_library_format_carries_its_composition():
    from repro.formats import all_formats

    for fmt in all_formats():
        assert fmt.levels is not None, fmt.name
        assert fmt.levels.name == fmt.name
        # Rebuilding from the carried composition reproduces the
        # descriptor exactly.
        assert_structurally_equal(fmt, fmt.levels.build())


def test_hand_written_descriptors_carry_no_composition():
    assert hand_csr().levels is None
