"""Unit tests for the level-format composition DSL."""

import random

import pytest

from repro.formats import (
    Composition,
    Compressed,
    Dense,
    LevelError,
    Offset,
    Padded,
    Singleton,
    compose,
    get_format,
    parse_spec,
    random_composition,
)
from repro.formats.levels import PAD


DENSE = [
    [1.0, 0.0, 2.0, 0.0],
    [0.0, 0.0, 0.0, 0.0],
    [3.0, 4.0, 0.0, 5.0],
    [0.0, 6.0, 0.0, 7.0],
]


class TestClassification:
    def test_families(self):
        cases = [
            ([Singleton("i"), Singleton("j")], "coord"),
            ([Dense("i"), Compressed("j")], "compressed"),
            ([Compressed("i"), Compressed("j")], "compressed"),
            ([Dense("i"), Offset("j")], "offset"),
            ([Dense("i"), Padded("j")], "padded"),
            ([Dense("i", block=2), Compressed("j", block=2)], "blocked"),
        ]
        for levels, family in cases:
            assert Composition("F", tuple(levels)).family == family

    def test_mixed_singleton_rejected(self):
        with pytest.raises(LevelError):
            compose("BAD", [Dense("i"), Singleton("j")])

    def test_duplicate_dim_rejected(self):
        with pytest.raises(LevelError):
            compose("BAD", [Singleton("i"), Singleton("i")])

    def test_unknown_dim_rejected(self):
        with pytest.raises(LevelError):
            compose("BAD", [Singleton("i"), Singleton("q")])

    def test_dest_capability(self):
        assert compose("A", [Singleton("i"), Singleton("j")],
                       ordering="lex").levels.dest_capable
        assert not compose("B", [Singleton("i"), Singleton("j")],
                           ordering="none").levels.dest_capable
        assert compose("C", [Dense("i"), Compressed("j")]).levels \
            .dest_capable
        assert not compose(
            "D",
            [Compressed("i", idx="ri", count="NDR", strict=True),
             Compressed("j", ptr="dp", idx="dc")],
        ).levels.dest_capable
        assert not compose("E", [Dense("i"), Padded("j")]).levels \
            .dest_capable
        assert compose("F", [Dense("i"), Offset("j")]).levels.dest_capable
        assert compose(
            "G", [Dense("i", block=2), Compressed("j", block=2)]
        ).levels.dest_capable


class TestSpecParsing:
    def test_parse_basic(self):
        comp = parse_spec("dense(i), compressed(j)", name="X")
        assert comp.family == "compressed"
        assert comp.levels == (Dense("i"), Compressed("j"))

    def test_parse_options_and_ordering(self):
        comp = parse_spec(
            "singleton(i), singleton(j) @ morton", name="X"
        )
        assert comp.ordering == "morton"
        comp = parse_spec(
            "compressed(i, idx=rowidx, count=NDR, strict), "
            "compressed(j, ptr=dptr, idx=dcol)",
            name="X",
        )
        assert comp.levels[0].strict is True
        assert comp.levels[0].count == "NDR"

    def test_spec_round_trips(self):
        for name in ("COO", "MCOO", "CSR", "DIA", "ELL", "BCSR3", "CSF",
                     "DCSR", "BCSC"):
            comp = get_format(name).levels
            assert parse_spec(
                comp.spec(), name=comp.name,
                description=comp.description,
            ) == comp

    def test_bad_specs_rejected(self):
        for text in ("", "nonsense(i)", "dense(i) compressed(j)",
                     "dense(i), compressed(j) @ sideways",
                     "dense(i, block=x), compressed(j)"):
            with pytest.raises(LevelError):
                parse_spec(text)


class TestDictRoundTrip:
    def test_all_library_formats(self):
        from repro.formats import all_formats

        for fmt in all_formats():
            comp = fmt.levels
            assert Composition.from_dict(comp.to_dict()) == comp

    def test_bad_dict_rejected(self):
        with pytest.raises(LevelError):
            Composition.from_dict({"name": "X", "levels": [
                {"kind": "mystery", "dim": "i"}
            ]})


class TestAssembleInterpret:
    @pytest.mark.parametrize("name", ["SCOO", "MCOO", "CSR", "CSC", "DIA",
                                      "ELL", "BCSR", "BCSR3", "DCSR",
                                      "BCSC", "BCSC3"])
    def test_identity_2d(self, name):
        comp = get_format(name).levels
        env = comp.assemble(DENSE)
        assert comp.interpret(env) == DENSE

    @pytest.mark.parametrize("name", ["SCOO3D", "MCOO3", "CSF"])
    def test_identity_3d(self, name):
        dense = [[[0.0] * 3 for _ in range(2)] for _ in range(2)]
        dense[0][1][2] = 1.5
        dense[1][0][0] = -2.0
        dense[1][1][1] = 3.0
        comp = get_format(name).levels
        assert comp.interpret(comp.assemble(dense)) == dense

    def test_ell_pads_with_sentinel(self):
        env = get_format("ELL").levels.assemble(DENSE)
        assert PAD in env["ellcol"]

    def test_random_compositions_round_trip(self):
        rng = random.Random(11)
        for case in range(40):
            comp = random_composition(rng, name=f"T{case}")
            if comp.rank == 2:
                dense = DENSE
            else:
                dense = [[[0.0, 1.0], [2.0, 0.0]],
                         [[0.0, 0.0], [0.0, 3.0]]]
            assert comp.interpret(comp.assemble(dense)) == dense


class TestRandomComposition:
    def test_deterministic_per_seed(self):
        a = [random_composition(random.Random(5), name=f"R{i}")
             for i in range(10)]
        b = [random_composition(random.Random(5), name=f"R{i}")
             for i in range(10)]
        assert a == b

    def test_all_build(self):
        rng = random.Random(3)
        families = set()
        for case in range(60):
            comp = random_composition(rng, name=f"R{case}")
            families.add(comp.family)
            fmt = comp.build()
            assert fmt.levels is comp
        # The sampler reaches every family within a modest budget.
        assert families == {"coord", "compressed", "offset", "padded",
                            "blocked"}


class TestRegistry:
    def test_register_format_round_trip(self):
        from repro.formats import register_format

        fmt = compose(
            "TESTFMT", [Dense("j"), Compressed("i")],
            description="registered by a test",
        )
        register_format("TESTFMT", lambda: fmt)
        try:
            assert get_format("testfmt") is fmt
            from repro.formats import all_formats

            assert any(f.name == "TESTFMT" for f in all_formats())
        finally:
            from repro.formats.library import _BUILT, _FACTORIES

            _FACTORIES.pop("TESTFMT", None)
            _BUILT.pop("TESTFMT", None)

    def test_unknown_format_error_lists_library(self):
        with pytest.raises(KeyError) as err:
            get_format("NOSUCH")
        message = str(err.value)
        assert "unknown format 'NOSUCH'" in message
        assert "CSR" in message and "DCSR" in message

    def test_parameterized_families_registered(self):
        from repro.formats.library import parameterized_families

        assert set(parameterized_families()) >= {"BCSR", "BCSC"}

    def test_block2_aliases_share_the_default_instance(self):
        assert get_format("BCSC2") is get_format("BCSC")
        assert get_format("BCSR2") is get_format("BCSR")

    def test_parameterized_lookup_builds_blocks(self):
        assert get_format("BCSC3").name == "BCSC3"
        assert get_format("BCSC3").levels.levels[0].block == 3
