"""Tests for the source-capable extension formats: BCSR, CSF, ELL."""

import random

import pytest

from repro import (
    BCSRMatrix,
    ELLMatrix,
    convert,
    dense_equal,
    get_conversion,
)
from repro.formats import bcsr, container_format, container_to_env, ell
from repro.synthesis import SynthesisError, synthesize


def random_dense(seed=0, nrows=10, ncols=12, density=0.3):
    rng = random.Random(seed)
    return [
        [
            round(rng.uniform(0.5, 9.5), 3) if rng.random() < density else 0.0
            for _ in range(ncols)
        ]
        for _ in range(nrows)
    ]


DENSE = random_dense(31)


class TestEllSource:
    def test_container_binding(self):
        m = ELLMatrix.from_dense(DENSE)
        assert container_format(m) == "ELL"
        env = container_to_env(m)
        assert env["W"] == m.width
        assert env["ellcol"] is m.col

    @pytest.mark.parametrize("dst", ["CSR", "CSC", "SCOO", "MCOO", "DIA"])
    def test_conversions(self, dst):
        m = ELLMatrix.from_dense(DENSE)
        out = convert(m, dst)
        out.check()
        assert dense_equal(out.to_dense(), DENSE)

    def test_padding_guard_in_generated_code(self):
        conv = get_conversion("ELL", "CSR")
        assert ">= 0" in conv.source  # the padding filter
        assert "NNZ = len(P)" in conv.source

    def test_all_padding_rows(self):
        dense = [
            [0.0, 0.0, 0.0],
            [1.0, 0.0, 2.0],
            [0.0, 0.0, 0.0],
        ]
        m = ELLMatrix.from_dense(dense)
        out = convert(m, "CSR")
        out.check()
        assert dense_equal(out.to_dense(), dense)

    def test_ell_destination_rejected(self):
        from repro.formats import scoo

        with pytest.raises(SynthesisError):
            synthesize(scoo(), ell())


class TestBcsrSource:
    @pytest.mark.parametrize("dst", ["CSR", "SCOO", "CSC"])
    def test_conversions(self, dst):
        m = BCSRMatrix.from_dense(DENSE, bsize=2)
        env = container_to_env(m)
        conv = get_conversion("BCSR", dst)
        out = conv(**{p: env[p] for p in conv.params})
        # BCSR stores explicit zeros inside blocks; compare dense images.
        from repro.formats import outputs_to_container

        result = outputs_to_container(dst, out, conv.uf_output_map, env)
        assert dense_equal(result.to_dense(), DENSE)

    def test_bcsr_destination_supported_via_case6(self):
        # Case 6 (affine block decomposition) makes BCSR a destination.
        from repro.formats import scoo

        conv = synthesize(scoo(), bcsr(2))
        assert "// 2" in conv.source and "% 2" in conv.source
        assert any("case 6" in n for n in conv.notes)


class TestEllKernels:
    def test_generated_spmv(self):
        from repro.kernels import dense_spmv, run_kernel

        m = ELLMatrix.from_dense(DENSE)
        x = [0.25 * ((i % 5) + 1) for i in range(m.ncols)]
        y = run_kernel(m, "spmv", x=x)
        reference = dense_spmv(DENSE, x)
        assert all(abs(a - b) < 1e-9 for a, b in zip(y, reference))
