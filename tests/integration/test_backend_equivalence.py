"""The numpy lowering backend must be bit-identical to the scalar backend.

These tests are the acceptance gate for the vectorized lowering: for every
synthesizable conversion pair, both backends run on the same inputs —
randomized matrices, an empty matrix, and duplicate coordinates — and the
raw inspector outputs (pointer arrays, permutations, padding and all) must
compare equal element for element.
"""

import pytest

from repro import COOMatrix, container_to_env, convert, dense_equal
from repro.formats import get_format
from repro.planner import PLANNABLE_2D, PLANNABLE_3D
from repro.synthesis import SynthesisError, synthesize
from repro.validation import backend_equivalence_test

np = pytest.importorskip("numpy")


def _synthesizable_pairs(names):
    pairs = []
    for src in names:
        for dst in names:
            if src == dst:
                continue
            try:
                synthesize(get_format(src), get_format(dst))
            except SynthesisError:
                continue
            pairs.append((src, dst))
    return pairs


PAIRS_2D = _synthesizable_pairs(PLANNABLE_2D)
PAIRS_3D = _synthesizable_pairs(PLANNABLE_3D)


@pytest.mark.parametrize("src,dst", PAIRS_2D,
                         ids=[f"{s}-{d}" for s, d in PAIRS_2D])
def test_pair_equivalent_2d(src, dst):
    report = backend_equivalence_test(trials=3, seed=11, pairs=[(src, dst)])
    assert report.ok, report.failures
    assert report.conversions_checked > 0


@pytest.mark.parametrize("src,dst", PAIRS_3D,
                         ids=[f"{s}-{d}" for s, d in PAIRS_3D])
def test_pair_equivalent_3d(src, dst):
    report = backend_equivalence_test(trials=3, seed=11, pairs=[(src, dst)])
    assert report.ok, report.failures
    assert report.conversions_checked > 0


def test_empty_matrix_all_targets():
    empty = COOMatrix(4, 5, [], [], [])
    for dst in ("CSR", "CSC", "DIA", "MCOO"):
        a = convert(empty, dst, backend="python")
        b = convert(empty, dst, backend="numpy")
        assert dense_equal(a.to_dense(), b.to_dense())


def test_duplicate_coordinates_match():
    # Unsorted COO with duplicate coordinates exercises the stable-rank
    # helpers' tie handling; both backends must agree exactly.
    dup = COOMatrix(3, 3, [0, 0, 2, 2], [1, 1, 0, 0], [1.0, 2.0, 3.0, 4.0])
    for dst in ("CSR", "CSC"):
        scalar = synthesize(get_format("COO"), get_format(dst))
        vector = synthesize(get_format("COO"), get_format(dst),
                            backend="numpy")
        env = container_to_env(dup)
        a = scalar(**{p: env[p] for p in scalar.params})
        env = container_to_env(dup)
        b = vector(**{p: env[p] for p in vector.params})
        assert a == b


def test_fallback_path_is_exercised():
    # At least one format pair must go through the scalar fallback so the
    # mixed vectorized/scalar emission stays covered: SCOO->BCSR retains
    # scalar nests, and SCOO->DIA's linear search is the canonical one.
    vec = synthesize(get_format("SCOO"), get_format("BCSR"),
                     backend="numpy")
    stats = vec.vector_stats or {}
    assert stats.get("scalar_nests", 0) >= 1
    assert stats.get("vectorized_nests", 0) >= 1


def test_numpy_outputs_are_plain_python():
    # MATERIALIZE must hand back the scalar backend's container types.
    coo = COOMatrix(2, 2, [0, 1], [1, 0], [1.0, 2.0])
    csr = convert(coo, "CSR", backend="numpy")
    assert isinstance(csr.rowptr, list)
    assert all(isinstance(v, int) for v in csr.rowptr)
    assert all(isinstance(v, float) for v in csr.val)


# ----------------------------------------------------------------------
# Compiled tier
# ----------------------------------------------------------------------
def _c_available() -> bool:
    from repro.backends import get_backend

    try:
        get_backend("c").require()
    except ValueError:
        return False
    return True


needs_c = pytest.mark.skipif(
    not _c_available(), reason="C toolchain (cffi + compiler) unavailable"
)

#: A representative slice of the pair matrix for the per-test C gate —
#: sort, histogram, binary-search, Morton, block and scalar-fallback
#: shapes.  CI's native job runs the full matrix via
#: ``backend_equivalence_test(backends=("numpy", "c"))``.
C_SMOKE_PAIRS = [
    ("COO", "CSR"),
    ("CSR", "CSC"),
    ("COO", "DIA"),
    ("COO", "MCOO"),
    ("SCOO", "BCSR"),
    ("CSF", "MCOO3"),
]


@needs_c
@pytest.mark.parametrize("src,dst", C_SMOKE_PAIRS,
                         ids=[f"{s}-{d}" for s, d in C_SMOKE_PAIRS])
def test_pair_equivalent_c(src, dst):
    report = backend_equivalence_test(
        trials=3, seed=11, pairs=[(src, dst)], backends=("numpy", "c")
    )
    assert report.ok, report.failures
    assert report.conversions_checked > 0


@needs_c
def test_c_outputs_are_plain_python():
    coo = COOMatrix(2, 2, [0, 1], [1, 0], [1.0, 2.0])
    csr = convert(coo, "CSR", backend="c")
    assert isinstance(csr.rowptr, list)
    assert all(isinstance(v, int) for v in csr.rowptr)
    assert all(isinstance(v, float) for v in csr.val)
