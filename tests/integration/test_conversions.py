"""End-to-end conversion correctness across every supported direction.

Each test converts a concrete matrix/tensor through the full pipeline
(descriptor -> synthesis -> generated Python -> container) and compares
against the dense reference.
"""

import random

import pytest

from repro import (
    COOMatrix,
    COOTensor3D,
    CSCMatrix,
    CSRMatrix,
    DIAMatrix,
    MortonCOOMatrix,
    MortonCOOTensor3D,
    convert,
    dense_equal,
)
from repro.datagen import shuffled


def random_dense(nrows, ncols, density=0.3, seed=0):
    rng = random.Random(seed)
    return [
        [
            round(rng.uniform(0.5, 9.5), 3) if rng.random() < density else 0.0
            for _ in range(ncols)
        ]
        for _ in range(nrows)
    ]


DENSE_CASES = [
    ("small", random_dense(6, 7, 0.4, seed=1)),
    ("wide", random_dense(5, 19, 0.25, seed=2)),
    ("tall", random_dense(21, 4, 0.25, seed=3)),
    ("dense-ish", random_dense(8, 8, 0.8, seed=4)),
    ("very-sparse", random_dense(30, 30, 0.02, seed=5)),
    ("single", [[0.0, 0.0], [0.0, 4.0]]),
]

TARGETS_2D = ["CSR", "CSC", "DIA", "MCOO", "SCOO", "COO"]


@pytest.mark.parametrize("case_name,dense", DENSE_CASES,
                         ids=[c[0] for c in DENSE_CASES])
@pytest.mark.parametrize("target", TARGETS_2D)
class TestFromSortedCOO:
    def test_convert_matches_dense(self, case_name, dense, target):
        coo = COOMatrix.from_dense(dense)
        out = convert(coo, target)
        out.check()
        assert dense_equal(out.to_dense(), dense)


@pytest.mark.parametrize("target", TARGETS_2D)
class TestFromUnsortedCOO:
    def test_convert_matches_dense(self, target):
        dense = random_dense(10, 12, 0.3, seed=7)
        coo = shuffled(COOMatrix.from_dense(dense), seed=11)
        assert not coo.is_sorted_lexicographic()
        out = convert(coo, target, assume_sorted=False)
        out.check()
        assert dense_equal(out.to_dense(), dense)


@pytest.mark.parametrize("target", ["CSC", "SCOO", "MCOO", "DIA", "CSR"])
class TestFromCSR:
    def test_convert_matches_dense(self, target):
        dense = random_dense(11, 9, 0.35, seed=8)
        csr = CSRMatrix.from_dense(dense)
        out = convert(csr, target)
        out.check()
        assert dense_equal(out.to_dense(), dense)


@pytest.mark.parametrize("target", ["CSR", "SCOO", "CSC"])
class TestFromCSC:
    def test_convert_matches_dense(self, target):
        dense = random_dense(9, 11, 0.35, seed=9)
        csc = CSCMatrix.from_dense(dense)
        out = convert(csc, target)
        out.check()
        assert dense_equal(out.to_dense(), dense)


@pytest.mark.parametrize("target", ["CSR", "CSC", "SCOO"])
class TestFromDIA:
    def test_convert_preserves_values(self, target):
        dense = random_dense(8, 8, 0.3, seed=10)
        dia = DIAMatrix.from_dense(dense)
        out = convert(dia, target)
        # DIA stores padding zeros; the dense image must still match.
        assert dense_equal(out.to_dense(), dense)


@pytest.mark.parametrize("target", ["SCOO", "CSR", "CSC"])
class TestFromMCOO:
    def test_convert_matches_dense(self, target):
        dense = random_dense(13, 13, 0.2, seed=12)
        mcoo = MortonCOOMatrix.from_coo(COOMatrix.from_dense(dense))
        out = convert(mcoo, target)
        out.check()
        assert dense_equal(out.to_dense(), dense)


class TestDiaBinarySearch:
    def test_matches_linear_search(self):
        dense = random_dense(14, 14, 0.25, seed=13)
        coo = COOMatrix.from_dense(dense)
        linear = convert(coo, "DIA")
        binary = convert(coo, "DIA", binary_search=True)
        assert linear.off == binary.off
        assert linear.data == binary.data


class TestUnoptimizedEquivalence:
    """optimize=False keeps the permutation and reductions; results match."""

    @pytest.mark.parametrize("target", ["CSR", "CSC", "MCOO", "DIA"])
    def test_same_result(self, target):
        dense = random_dense(9, 10, 0.3, seed=14)
        coo = COOMatrix.from_dense(dense)
        fast = convert(coo, target)
        slow = convert(coo, target, optimize=False)
        assert dense_equal(fast.to_dense(), slow.to_dense())

    def test_unoptimized_keeps_permutation(self):
        from repro.formats import csr as csr_fmt, scoo as scoo_fmt
        from repro.synthesis import synthesize

        conv = synthesize(scoo_fmt(), csr_fmt(), optimize=False)
        assert "OrderedList" in conv.source


class Test3DConversions:
    def make_tensor(self, seed=0, nnz=50, dims=(8, 9, 7)):
        rng = random.Random(seed)
        coords = set()
        while len(coords) < nnz:
            coords.add(
                (rng.randrange(dims[0]), rng.randrange(dims[1]),
                 rng.randrange(dims[2]))
            )
        ordered = sorted(coords)
        return COOTensor3D(
            dims,
            [c[0] for c in ordered],
            [c[1] for c in ordered],
            [c[2] for c in ordered],
            [round(rng.uniform(0.5, 9.5), 3) for _ in ordered],
        )

    def test_coo3d_to_mcoo3(self):
        t = self.make_tensor(seed=1)
        out = convert(t, "MCOO3")
        out.check()
        assert out.to_dict() == t.to_dict()

    def test_mcoo3_to_scoo3d(self):
        t = self.make_tensor(seed=2)
        m = MortonCOOTensor3D.from_coo(t)
        out = convert(m, "SCOO3D")
        out.check()
        assert out.to_dict() == t.to_dict()
        assert out.row == t.row and out.col == t.col and out.z == t.z

    def test_mcoo3_matches_reference_sort(self):
        t = self.make_tensor(seed=3)
        out = convert(t, "MCOO3")
        ref = MortonCOOTensor3D.from_coo(t)
        assert (out.row, out.col, out.z, out.val) == \
            (ref.row, ref.col, ref.z, ref.val)


class TestChainedConversions:
    def test_round_trip_chain(self):
        dense = random_dense(10, 10, 0.3, seed=15)
        m = COOMatrix.from_dense(dense)
        for target in ["CSR", "CSC", "SCOO", "DIA", "SCOO", "MCOO", "SCOO"]:
            m = convert(m, target)
            assert dense_equal(m.to_dense(), dense), target

    def test_all_zero_matrix(self):
        dense = [[0.0] * 4 for _ in range(4)]
        coo = COOMatrix.from_dense(dense)
        for target in ["CSR", "CSC", "SCOO"]:
            out = convert(coo, target)
            out.check()
            assert dense_equal(out.to_dense(), dense)

    def test_empty_rows_and_columns(self):
        dense = [
            [0.0, 0.0, 0.0],
            [0.0, 5.0, 0.0],
            [0.0, 0.0, 0.0],
        ]
        coo = COOMatrix.from_dense(dense)
        csr = convert(coo, "CSR")
        assert csr.rowptr == [0, 0, 1, 1]
        csc = convert(coo, "CSC")
        assert csc.colptr == [0, 0, 1, 1]
