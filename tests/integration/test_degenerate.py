"""Degenerate container shapes through every conversion, both backends.

The boundary cases the fuzzer generates continuously, pinned as explicit
regressions: empty matrices, single rows/columns, fully dense blocks,
single diagonals, and tall/wide rectangles (including rectangular DIA,
whose offset range is asymmetric).
"""

import pytest

from repro import COOMatrix, convert, dense_equal

BACKENDS = ("python", "numpy")
TARGETS = ("CSR", "CSC", "DIA", "SCOO", "MCOO", "BCSR")


def _roundtrip(dense, target, backend):
    coo = COOMatrix.from_dense(dense)
    out = convert(coo, target, backend=backend, validate="full")
    out.check()
    assert dense_equal(out.to_dense(), dense)
    return out


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("target", TARGETS)
class TestDegenerateShapes:
    def test_empty_matrix(self, target, backend):
        _roundtrip([[0.0, 0.0, 0.0], [0.0, 0.0, 0.0]], target, backend)

    def test_single_row(self, target, backend):
        _roundtrip([[1.0, 0.0, 2.0, 0.0, 3.0]], target, backend)

    def test_single_column(self, target, backend):
        _roundtrip([[1.0], [0.0], [2.0], [3.0]], target, backend)

    def test_one_by_one(self, target, backend):
        _roundtrip([[4.0]], target, backend)

    def test_fully_dense(self, target, backend):
        dense = [[float(i * 3 + j + 1) for j in range(3)] for i in range(3)]
        _roundtrip(dense, target, backend)

    def test_single_diagonal(self, target, backend):
        dense = [
            [0.0, 1.0, 0.0, 0.0],
            [0.0, 0.0, 2.0, 0.0],
            [0.0, 0.0, 0.0, 3.0],
            [0.0, 0.0, 0.0, 0.0],
        ]
        _roundtrip(dense, target, backend)

    def test_tall_rectangular(self, target, backend):
        dense = [[0.0, 0.0] for _ in range(7)]
        dense[0][1] = 1.0
        dense[4][0] = 2.0
        dense[6][1] = 3.0
        _roundtrip(dense, target, backend)

    def test_wide_rectangular(self, target, backend):
        dense = [[0.0] * 7 for _ in range(2)]
        dense[0][5] = 1.0
        dense[1][0] = 2.0
        dense[1][6] = 3.0
        _roundtrip(dense, target, backend)


@pytest.mark.parametrize("backend", BACKENDS)
class TestRectangularDIA:
    """DIA offsets span [-(nrows-1), ncols-1]; asymmetric for rectangles."""

    def test_tall_subdiagonal(self, backend):
        dense = [[0.0], [0.0], [0.0], [9.0]]  # offset -3 on a 4x1 matrix
        out = _roundtrip(dense, "DIA", backend)
        assert out.off == [-3]

    def test_wide_superdiagonal(self, backend):
        dense = [[0.0, 0.0, 0.0, 8.0]]  # offset +3 on a 1x4 matrix
        out = _roundtrip(dense, "DIA", backend)
        assert out.off == [3]

    def test_every_diagonal_of_a_dense_rectangle(self, backend):
        dense = [[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]]
        out = _roundtrip(dense, "DIA", backend)
        assert out.off == [-1, 0, 1, 2]
