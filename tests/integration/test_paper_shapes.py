"""Qualitative reproduction guards: the paper's shapes must keep holding.

These run small-but-meaningful workloads and assert the *orderings* of the
evaluation (who beats whom), with generous margins so timing noise does not
flake them.  They are the regression net for EXPERIMENTS.md: a change that
silently destroys a reproduced shape (say, breaks the permutation DCE or
the fusion pass) fails here.
"""

import pytest

from repro import get_conversion
from repro.baselines import REGISTRY
from repro.baselines.hicoo import blocked_morton_sort
from repro.datagen import banded, load, stencil_offsets, synthetic_tensor3d
from repro.evalharness import geomean, time_fn
from repro.formats import container_to_env

#: Margin applied to every ordering assertion: "A beats B" is asserted as
#: time_A < MARGIN * time_B, so small timing noise cannot flake the suite.
MARGIN = 1.35

MATRICES = ["majorbasis", "ecology1", "cant"]
SCALE = 0.002
REPEATS = 3


def _ours_time(src, dst, coo, **kwargs):
    conv = get_conversion(src, dst, **kwargs)
    conv.compile()
    env = container_to_env(coo)
    inputs = {p: env[p] for p in conv.params}
    return time_fn(lambda: conv(**inputs), repeats=REPEATS)


def _baseline_time(conversion, lib, coo):
    return time_fn(REGISTRY[(conversion, lib)], coo, repeats=REPEATS)


@pytest.fixture(scope="module")
def matrices():
    return {name: load(name, scale=SCALE) for name in MATRICES}


class TestFig2cShape:
    """COO→CSR: ours must beat every baseline (paper: 2.85x vs TACO)."""

    @pytest.mark.parametrize("lib", ["taco", "sparskit", "mkl"])
    def test_ours_beats_baseline(self, matrices, lib):
        ratios = []
        for coo in matrices.values():
            ours = _ours_time("SCOO", "CSR", coo)
            base = _baseline_time("COO_CSR", lib, coo)
            ratios.append(ours / base)
        assert geomean(ratios) < MARGIN, (
            f"synthesized COO->CSR lost to {lib}: geomean ratio "
            f"{geomean(ratios):.2f}"
        )


class TestFig2aShape:
    """COO→CSC: ours competitive with TACO, ahead of SPARSKIT and MKL."""

    def test_ours_vs_taco_competitive(self, matrices):
        ratios = [
            _ours_time("SCOO", "CSC", coo)
            / _baseline_time("COO_CSC", "taco", coo)
            for coo in matrices.values()
        ]
        assert geomean(ratios) < MARGIN

    @pytest.mark.parametrize("lib", ["sparskit", "mkl"])
    def test_ours_beats_slow_baselines(self, matrices, lib):
        ratios = [
            _ours_time("SCOO", "CSC", coo)
            / _baseline_time("COO_CSC", lib, coo)
            for coo in matrices.values()
        ]
        assert geomean(ratios) < 1.0, f"should clearly beat {lib}"


class TestFig2dShape:
    """COO→DIA linear search: loses to TACO, degrades with #diagonals."""

    def test_taco_beats_linear_search(self, matrices):
        coo = matrices["majorbasis"]  # 22 diagonals: the paper's worst case
        ours = _ours_time("SCOO", "DIA", coo)
        taco = _baseline_time("COO_DIA", "taco", coo)
        assert ours > 1.5 * taco

    def test_gap_grows_with_diagonals(self):
        times = {}
        for ndiags in (3, 25):
            coo = banded(300, 300, stencil_offsets(ndiags, spread=11), seed=2)
            ours = _ours_time("SCOO", "DIA", coo)
            taco = _baseline_time("COO_DIA", "taco", coo)
            times[ndiags] = ours / taco
        assert times[25] > times[3], (
            f"linear-search penalty should grow with diagonals: {times}"
        )


class TestFig3Shape:
    """Binary search recovers a large part of the linear-search gap."""

    def test_binary_beats_linear(self, matrices):
        coo = matrices["majorbasis"]
        linear = _ours_time("SCOO", "DIA", coo)
        binary = _ours_time("SCOO", "DIA", coo, binary_search=True)
        assert binary < linear

    def test_binary_competitive_with_mkl(self, matrices):
        ratios = [
            _ours_time("SCOO", "DIA", coo, binary_search=True)
            / _baseline_time("COO_DIA", "mkl", coo)
            for coo in matrices.values()
        ]
        assert geomean(ratios) < MARGIN


class TestTable4Shape:
    """Whole-tensor Morton reorder loses to HiCOO's blocked sort."""

    def test_hicoo_wins(self):
        tensor = synthetic_tensor3d((48, 48, 40), 2500, seed=9)
        conv = get_conversion("SCOO3D", "MCOO3")
        conv.compile()
        env = container_to_env(tensor)
        inputs = {p: env[p] for p in conv.params}
        ours = time_fn(lambda: conv(**inputs), repeats=REPEATS)
        hicoo = time_fn(
            blocked_morton_sort, tensor, block_bits=4, repeats=REPEATS
        )
        assert ours > hicoo / MARGIN  # ours never meaningfully faster


class TestOptimizationShapes:
    """The §3.3 passes must keep paying for themselves."""

    def test_dce_of_permutation_pays(self, matrices):
        coo = matrices["majorbasis"]
        optimized = _ours_time("SCOO", "CSR", coo)
        unoptimized = _ours_time("SCOO", "CSR", coo, optimize=False)
        assert unoptimized > 2.0 * optimized

    def test_structure_of_fast_path_is_single_pass(self):
        conv = get_conversion("SCOO", "CSR")
        # One fused population+copy loop plus the monotonic fix-up.
        assert conv.source.count("for ") == 2
        assert "OrderedList" not in conv.source
