"""Property-based tests (hypothesis) on core invariants.

Covers the expression algebra, the parser round-trip, relation composition
semantics, Morton codes, the ordered structures, and — most importantly —
the synthesized conversions themselves: for arbitrary sparse matrices,
converting through any synthesized inspector preserves the dense image.
"""

import random

from hypothesis import given, settings, strategies as st

from repro import (
    COOMatrix,
    convert,
    dense_equal,
)
from repro.ir import (
    Expr,
    Sym,
    UFCall,
    Var,
    parse_expr,
    parse_relation,
    parse_set,
)
from repro.runtime import (
    LexBucketPermutation,
    OrderedList,
    OrderedSet,
    demorton2,
    demorton3,
    morton2,
    morton3,
)

# ----------------------------------------------------------------------
# Expression strategies
# ----------------------------------------------------------------------
names = st.sampled_from(["i", "j", "k", "n"])
sym_names = st.sampled_from(["N", "M", "NNZ"])


@st.composite
def exprs(draw, depth=2):
    choice = draw(st.integers(0, 3 if depth > 0 else 2))
    if choice == 0:
        return Expr(draw(st.integers(-50, 50)))
    if choice == 1:
        return Var(draw(names)).as_expr()
    if choice == 2:
        return Sym(draw(sym_names)).as_expr()
    inner = draw(exprs(depth=depth - 1))
    return UFCall(draw(st.sampled_from(["f", "g"])), [inner]).as_expr()


class TestExprAlgebra:
    @given(exprs(), exprs())
    def test_addition_commutes(self, a, b):
        assert a + b == b + a

    @given(exprs(), exprs(), exprs())
    def test_addition_associates(self, a, b, c):
        assert (a + b) + c == a + (b + c)

    @given(exprs())
    def test_additive_inverse(self, a):
        assert (a - a).is_zero()

    @given(exprs(), st.integers(-10, 10), st.integers(-10, 10))
    def test_scalar_distributes(self, a, x, y):
        assert a * (x + y) == a * x + a * y

    @given(exprs())
    def test_double_negation(self, a):
        assert -(-a) == a

    @given(exprs())
    def test_hash_consistency(self, a):
        assert hash(a + 0) == hash(a)

    @given(exprs(), st.sampled_from(["i", "j"]))
    def test_substitute_identity(self, a, var):
        assert a.substitute_vars({var: Var(var)}) == a


class TestParserRoundTrip:
    @given(exprs())
    def test_expr_print_parse(self, e):
        text = str(e)
        again = parse_expr(text, ["i", "j", "k", "n"])
        assert again == e

    @given(st.lists(st.integers(0, 20), min_size=1, max_size=3, unique=True))
    def test_set_roundtrip_rectangles(self, bounds):
        tuple_vars = [f"v{i}" for i in range(len(bounds))]
        constraints = " && ".join(
            f"0 <= {v} < {b + 1}" for v, b in zip(tuple_vars, bounds)
        )
        s = parse_set(f"{{[{', '.join(tuple_vars)}] : {constraints}}}")
        assert parse_set(str(s)) == s


class TestRelationSemantics:
    @given(st.integers(-20, 20), st.integers(1, 5), st.integers(-10, 10))
    def test_compose_affine_pointwise(self, x, a, b):
        f = parse_relation(f"{{[i] -> [j] : j = i + {b}}}")
        g = parse_relation(f"{{[j] -> [k] : k = {a} * j}}")
        comp = g.compose(f)
        assert comp.contains((x,), (a * (x + b),), {})

    @given(st.integers(-20, 20))
    def test_inverse_membership(self, x):
        r = parse_relation("{[i] -> [j] : j = 2 * i + 1}")
        assert r.inverse().contains((2 * x + 1,), (x,), {})


class TestMortonProperties:
    coords = st.integers(0, 2**20)

    @given(coords, coords)
    def test_roundtrip_2d(self, i, j):
        assert demorton2(morton2(i, j)) == (i, j)

    @given(coords, coords, coords)
    def test_roundtrip_3d(self, i, j, k):
        assert demorton3(morton3(i, j, k)) == (i, j, k)

    @given(coords, coords)
    def test_monotone_in_block(self, i, j):
        # Within the same high bits, increasing both coords increases the key.
        assert morton2(i, j) < morton2(i + 1, j + 1)

    @given(coords, coords, coords, coords)
    def test_injective(self, i1, j1, i2, j2):
        if (i1, j1) != (i2, j2):
            assert morton2(i1, j1) != morton2(i2, j2)


class TestOrderedStructures:
    @given(st.lists(st.tuples(st.integers(0, 30), st.integers(0, 30)),
                    min_size=1, max_size=40, unique=True))
    def test_ordered_list_ranks_match_sort(self, items):
        ol = OrderedList(2, key=lambda i, j: (j, i))
        for it in items:
            ol.insert(*it)
        expected = sorted(items, key=lambda t: (t[1], t[0]))
        for rank, it in enumerate(expected):
            assert ol.lookup(*it) == rank

    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=50))
    def test_ordered_set_sorted_unique(self, values):
        s = OrderedSet()
        for v in values:
            s.insert(v)
        out = s.to_list()
        assert out == sorted(set(values))
        for index, v in enumerate(out):
            assert s.index_of(v) == index

    @given(st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)),
                    min_size=1, max_size=40, unique=True))
    def test_bucket_permutation_matches_comparison_sort(self, items):
        # Source must be sorted row-major for the bucket precondition.
        items = sorted(items)
        bucket = LexBucketPermutation(10, which=1, in_arity=2)
        reference = OrderedList(2, key=lambda i, j: (j, i))
        for it in items:
            bucket.insert(*it)
            reference.insert(*it)
        assert [bucket.lookup(*it) for it in items] == \
            [reference.lookup(*it) for it in items]


# ----------------------------------------------------------------------
# Whole-pipeline property: conversions preserve the dense image.
# ----------------------------------------------------------------------
@st.composite
def sparse_matrices(draw):
    nrows = draw(st.integers(1, 14))
    ncols = draw(st.integers(1, 14))
    ncells = nrows * ncols
    nnz = draw(st.integers(0, min(ncells, 40)))
    seed = draw(st.integers(0, 10_000))
    rng = random.Random(seed)
    cells = rng.sample(range(ncells), nnz)
    dense = [[0.0] * ncols for _ in range(nrows)]
    for cell in cells:
        dense[cell // ncols][cell % ncols] = round(rng.uniform(0.5, 9.5), 3)
    return dense


class TestConversionProperty:
    @settings(max_examples=25, deadline=None)
    @given(sparse_matrices(), st.sampled_from(["CSR", "CSC", "SCOO", "MCOO"]))
    def test_sorted_coo_conversion_preserves_dense(self, dense, target):
        coo = COOMatrix.from_dense(dense)
        out = convert(coo, target)
        out.check()
        assert dense_equal(out.to_dense(), dense)

    @settings(max_examples=15, deadline=None)
    @given(sparse_matrices())
    def test_dia_conversion_preserves_dense(self, dense):
        coo = COOMatrix.from_dense(dense)
        out = convert(coo, "DIA")
        out.check()
        assert dense_equal(out.to_dense(), dense)

    @settings(max_examples=15, deadline=None)
    @given(sparse_matrices(), st.integers(0, 1000))
    def test_unsorted_coo_conversion_preserves_dense(self, dense, seed):
        from repro.datagen import shuffled

        coo = shuffled(COOMatrix.from_dense(dense), seed=seed)
        out = convert(coo, "CSR", assume_sorted=False)
        out.check()
        assert dense_equal(out.to_dense(), dense)

    @settings(max_examples=15, deadline=None)
    @given(sparse_matrices())
    def test_csr_csc_transpose_consistency(self, dense):
        from repro import CSRMatrix

        csr = CSRMatrix.from_dense(dense)
        csc = convert(csr, "CSC")
        transposed = [[row[j] for row in dense] for j in range(len(dense[0]))]
        # CSC of A stores the same arrays CSR of A^T would.
        csr_t = CSRMatrix.from_dense(transposed)
        assert csc.colptr == csr_t.rowptr
        assert csc.row == csr_t.col
        assert csc.val == csr_t.val


class TestKernelProperty:
    """Generated executors agree with the dense reference on random data."""

    @settings(max_examples=15, deadline=None)
    @given(sparse_matrices(), st.sampled_from(["CSR", "CSC", "DIA", "SCOO"]))
    def test_generated_spmv_matches_dense(self, dense, fmt):
        from repro import CSCMatrix, CSRMatrix, DIAMatrix
        from repro.kernels import dense_spmv, run_kernel

        ncols = len(dense[0])
        x = [((k * 7) % 5) / 5.0 + 0.1 for k in range(ncols)]
        if fmt == "CSR":
            container = CSRMatrix.from_dense(dense)
        elif fmt == "CSC":
            container = CSCMatrix.from_dense(dense)
        elif fmt == "DIA":
            container = DIAMatrix.from_dense(dense)
        else:
            container = COOMatrix.from_dense(dense)
        y = run_kernel(container, "spmv", x=x)
        reference = dense_spmv(dense, x)
        assert len(y) == len(reference)
        assert all(abs(a - b) < 1e-9 for a, b in zip(y, reference))

    @settings(max_examples=10, deadline=None)
    @given(sparse_matrices())
    def test_conversion_preserves_spmv(self, dense):
        from repro.kernels import run_kernel

        coo = COOMatrix.from_dense(dense)
        x = [((k * 3) % 4) / 4.0 + 0.2 for k in range(len(dense[0]))]
        reference = run_kernel(coo, "spmv", x=x)
        for fmt in ("CSR", "DIA"):
            converted = convert(coo, fmt)
            y = run_kernel(converted, "spmv", x=x)
            assert all(abs(a - b) < 1e-9 for a, b in zip(y, reference))
