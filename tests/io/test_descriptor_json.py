"""Tests for JSON descriptor serialization."""

import io
import json

import pytest

from repro.formats import all_formats, csr, mcoo, scoo
from repro.io import (
    DescriptorJSONError,
    descriptor_from_dict,
    descriptor_to_dict,
    load_descriptor,
    resolve_format,
    save_descriptor,
)
from repro.synthesis import synthesize


class TestRoundTrip:
    @pytest.mark.parametrize("fmt", all_formats(), ids=lambda f: f.name)
    def test_every_library_format(self, fmt):
        again = descriptor_from_dict(descriptor_to_dict(fmt))
        assert again.name == fmt.name
        assert again.sparse_to_dense == fmt.sparse_to_dense
        assert again.data_access == fmt.data_access
        assert again.uf_domains == fmt.uf_domains
        assert again.monotonic == fmt.monotonic
        assert again.ordering == fmt.ordering
        assert again.shape_syms == fmt.shape_syms

    def test_roundtripped_descriptor_synthesizes(self):
        again = descriptor_from_dict(descriptor_to_dict(mcoo()))
        conv = synthesize(scoo(), again)
        assert "MORTON" in conv.source

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "csr.json"
        save_descriptor(csr(), path)
        again = load_descriptor(path)
        assert again.index_ufs() == {"rowptr", "col2"}

    def test_json_is_valid(self):
        text = json.dumps(descriptor_to_dict(mcoo()))
        data = json.loads(text)
        assert data["name"] == "MCOO"
        assert data["ordering"]["keys"] == ["MORTON(i, j)"]


class TestErrors:
    def test_missing_required_field(self):
        with pytest.raises(DescriptorJSONError, match="sparse_to_dense"):
            descriptor_from_dict({"name": "X", "data_access": "{[n] -> [m] : m = n}"})

    def test_bad_ordering(self):
        data = descriptor_to_dict(mcoo())
        del data["ordering"]["keys"]
        with pytest.raises(DescriptorJSONError):
            descriptor_from_dict(data)

    def test_invalid_descriptor_content(self):
        data = descriptor_to_dict(csr())
        data["uf_domains"] = {}  # drop declarations
        data["uf_ranges"] = {}
        with pytest.raises(DescriptorJSONError):
            descriptor_from_dict(data)

    def test_not_json(self):
        with pytest.raises(DescriptorJSONError):
            load_descriptor(io.StringIO("not json at all {"))

    def test_non_object_rejected(self):
        with pytest.raises(DescriptorJSONError):
            load_descriptor(io.StringIO("[1, 2, 3]"))


class TestResolveFormat:
    def test_library_name(self):
        assert resolve_format("CSR").name == "CSR"

    def test_json_path(self, tmp_path):
        path = tmp_path / "fmt.json"
        save_descriptor(mcoo(), path)
        assert resolve_format(str(path)).name == "MCOO"

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            resolve_format("NOPE")


class TestCliIntegration:
    def test_show_json_and_reload(self, tmp_path, capsys):
        from repro.__main__ import main

        assert main(["show", "DIA", "--json"]) == 0
        text = capsys.readouterr().out
        path = tmp_path / "dia.json"
        path.write_text(text)
        assert main(["show", str(path)]) == 0
        assert "off" in capsys.readouterr().out

    def test_synthesize_from_json(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "csr.json"
        save_descriptor(csr(), path)
        assert main(["synthesize", "SCOO", str(path)]) == 0
        assert "rowptr" in capsys.readouterr().out


class TestComposedDescriptors:
    """Composed formats serialize their level spec and rebuild from it."""

    def test_levels_object_present(self):
        data = descriptor_to_dict(csr())
        assert data["levels"]["name"] == "CSR"
        assert [lv["kind"] for lv in data["levels"]["levels"]] == \
            ["dense", "compressed"]

    def test_round_trip_rebuilds_the_composition(self):
        fmt = mcoo()
        again = descriptor_from_dict(descriptor_to_dict(fmt))
        assert again.levels is not None
        assert again.levels == fmt.levels
        assert str(again.sparse_to_dense) == str(fmt.sparse_to_dense)

    def test_levels_only_document_loads(self):
        data = {"levels": descriptor_to_dict(csr())["levels"]}
        fmt = descriptor_from_dict(data)
        assert fmt.name == "CSR"
        assert str(fmt.sparse_to_dense) == str(csr().sparse_to_dense)

    def test_explicit_field_disagreeing_with_levels_rejected(self):
        data = descriptor_to_dict(csr())
        data["position_var"] = "zz"
        with pytest.raises(DescriptorJSONError):
            descriptor_from_dict(data)
        data = descriptor_to_dict(csr())
        data["name"] = "NOTCSR"
        with pytest.raises(DescriptorJSONError):
            descriptor_from_dict(data)

    def test_invalid_composition_rejected(self):
        with pytest.raises(DescriptorJSONError):
            descriptor_from_dict(
                {"levels": {"name": "X", "levels": [
                    {"kind": "dense", "dim": "i"},
                    {"kind": "singleton", "dim": "j"},
                ]}}
            )

    def test_file_round_trip_synthesizes(self, tmp_path):
        from repro.formats import parse_spec

        fmt = parse_spec(
            "dense(j), compressed(i)", name="MYCSC"
        ).build()
        path = tmp_path / "mycsc.json"
        save_descriptor(fmt, str(path))
        loaded = load_descriptor(str(path))
        assert loaded.levels == fmt.levels
        conv = synthesize(loaded, scoo())
        assert conv.src_format == "MYCSC"
