"""Unit tests for conjunctions: simplification, solving, projection."""

import pytest

from repro.ir import (
    Conjunction,
    ProjectionError,
    Sym,
    UFCall,
    Var,
    equals,
    greater_equal,
    less,
    less_equal,
    parse_set,
)


def conj_of(text: str) -> Conjunction:
    """Parse a set and return its single conjunction (test helper)."""
    return parse_set(text).single_conjunction


class TestConstruction:
    def test_trivial_constraints_dropped(self):
        c = Conjunction([equals(Var("i"), Var("i")), less(Var("i"), Sym("N"))])
        assert len(c) == 1

    def test_duplicates_dropped(self):
        c = Conjunction([less(Var("i"), Sym("N")), less(Var("i"), Sym("N"))])
        assert len(c) == 1

    def test_equality_duplicates_dropped_modulo_sign(self):
        c = Conjunction([equals(Var("i"), Sym("N")), equals(Sym("N"), Var("i"))])
        assert len(c) == 1

    def test_non_constraint_rejected(self):
        with pytest.raises(TypeError):
            Conjunction([42])


class TestSolving:
    def test_defining_equality(self):
        c = conj_of("{[k,j] : j = col(k)}")
        assert c.defining_equality("j") == UFCall("col", [Var("k")]).as_expr()

    def test_defining_equality_absent(self):
        c = conj_of("{[k,j] : j <= col(k)}")
        assert c.defining_equality("j") is None

    def test_self_referential_equality_rejected(self):
        c = Conjunction([equals(Var("j"), UFCall("f", [Var("j")]))])
        assert c.defining_equality("j") is None

    def test_lower_and_upper_bounds(self):
        c = conj_of("{[i,k] : rowptr(i) <= k < rowptr(i+1)}")
        lows = c.lower_bounds("k")
        highs = c.upper_bounds("k")
        assert lows == [UFCall("rowptr", [Var("i")]).as_expr()]
        assert highs == [UFCall("rowptr", [Var("i") + 1]) - 1]

    def test_constraints_on(self):
        c = conj_of("{[i,k] : 0 <= i < N && rowptr(i) <= k}")
        assert len(c.constraints_on("k")) == 1
        assert len(c.constraints_on("i")) == 3


class TestProjection:
    def test_project_via_equality(self):
        c = conj_of("{[i,j] : j = col(i) && 0 <= j < NC}")
        out = c.project_out("j")
        assert not out.mentions_var_anywhere("j")
        # 0 <= col(i) < NC must survive
        assert any("col" in str(x) for x in out)

    def test_project_fourier_motzkin(self):
        c = conj_of("{[i,k] : 0 <= k && k <= i && i <= 10}")
        out = c.project_out("k")
        # 0 <= i survives from pairing 0 <= k with k <= i
        assert out.evaluate({"i": 0})
        assert out.evaluate({"i": 10})
        assert not out.mentions_var_anywhere("k")

    def test_project_stuck_raises_when_strict(self):
        c = Conjunction([equals(UFCall("f", [Var("k")]), Sym("N"))])
        with pytest.raises(ProjectionError):
            c.project_out("k", strict=True)

    def test_project_stuck_overapproximates_when_lenient(self):
        c = Conjunction(
            [
                equals(UFCall("f", [Var("k")]), Sym("N")),
                less(Var("i"), Sym("M")),
            ]
        )
        out = c.project_out("k", strict=False)
        assert not out.mentions_var_anywhere("k")
        assert len(out) == 1  # only the i constraint survives

    def test_project_all(self):
        c = conj_of("{[i,j] : 0 <= i < 5 && j = i + 1}")
        out = c.project_out_all(["j", "i"])
        assert len(out) == 0


class TestEvaluation:
    def test_affine_evaluation(self):
        c = conj_of("{[i,j] : 0 <= i < N && j = i + 1}")
        assert c.evaluate({"i": 2, "j": 3, "N": 5})
        assert not c.evaluate({"i": 2, "j": 4, "N": 5})
        assert not c.evaluate({"i": 5, "j": 6, "N": 5})

    def test_uf_as_array(self):
        c = conj_of("{[i,k] : rowptr(i) <= k < rowptr(i+1)}")
        env = {"rowptr": [0, 2, 5]}
        assert c.evaluate({**env, "i": 0, "k": 1})
        assert not c.evaluate({**env, "i": 0, "k": 2})
        assert c.evaluate({**env, "i": 1, "k": 4})

    def test_uf_as_callable(self):
        c = conj_of("{[i,j] : j = f(i)}")
        assert c.evaluate({"f": lambda x: x * 2, "i": 3, "j": 6})

    def test_missing_binding_raises(self):
        c = conj_of("{[i] : 0 <= i < N}")
        with pytest.raises(KeyError):
            c.evaluate({"i": 0})

    def test_mul_atom_evaluation(self):
        c = conj_of("{[ii,d,kd] : kd = ND * ii + d}")
        assert c.evaluate({"ii": 2, "d": 1, "kd": 7, "ND": 3})
        assert not c.evaluate({"ii": 2, "d": 1, "kd": 8, "ND": 3})


class TestRenaming:
    def test_rename_vars(self):
        c = conj_of("{[i] : 0 <= i < N}").rename_vars({"i": "x"})
        assert c.var_names() == {"x"}

    def test_rename_ufs(self):
        c = conj_of("{[n,i] : i = row(n)}").rename_ufs({"row": "row1"})
        assert c.uf_names() == {"row1"}

    def test_substitute_vars(self):
        c = conj_of("{[i,k] : k = f(i)}").substitute_vars({"i": Var("k2")})
        assert c.var_names() == {"k", "k2"}
