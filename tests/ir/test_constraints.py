"""Unit tests for constraints and bound classification."""

import pytest

from repro.ir import (
    Eq,
    Geq,
    Sym,
    UFCall,
    Var,
    bounds_on_var,
    equals,
    greater,
    greater_equal,
    less,
    less_equal,
)


class TestConstructors:
    def test_equals(self):
        c = equals(Var("i"), Sym("N"))
        assert isinstance(c, Eq)
        assert c.expr == Var("i") - Sym("N")

    def test_less_is_strict(self):
        c = less(Var("i"), Sym("N"))
        assert isinstance(c, Geq)
        # i < N  =>  N - i - 1 >= 0
        assert c.expr == Sym("N") - Var("i") - 1

    def test_greater_is_strict(self):
        c = greater(Var("i"), 0)
        assert c.expr == Var("i") - 1

    def test_less_equal(self):
        c = less_equal(Var("i"), Sym("N"))
        assert c.expr == Sym("N") - Var("i")

    def test_greater_equal(self):
        c = greater_equal(Var("i"), 0)
        assert c.expr == Var("i").as_expr()


class TestTriviality:
    def test_trivial_eq(self):
        assert equals(Var("i"), Var("i")).is_trivial()

    def test_unsat_eq(self):
        assert equals(1, 2).is_unsatisfiable()

    def test_trivial_geq(self):
        assert less_equal(0, 3).is_trivial()

    def test_unsat_geq(self):
        assert less_equal(3, 0).is_unsatisfiable()

    def test_nontrivial(self):
        c = less(Var("i"), Sym("N"))
        assert not c.is_trivial()
        assert not c.is_unsatisfiable()


class TestEqNormalization:
    def test_sign_insensitive_equality(self):
        a = equals(Var("i"), Sym("N"))
        b = equals(Sym("N"), Var("i"))
        assert a == b
        assert hash(a) == hash(b)

    def test_different_equalities_differ(self):
        assert equals(Var("i"), Sym("N")) != equals(Var("i"), Sym("M"))


class TestBoundsOnVar:
    def test_eq_definition(self):
        kind, e = bounds_on_var(equals(Var("j"), UFCall("col", [Var("k")])), "j")
        assert kind == "eq"
        assert e == UFCall("col", [Var("k")]).as_expr()

    def test_eq_definition_negated_side(self):
        kind, e = bounds_on_var(equals(UFCall("col", [Var("k")]), Var("j")), "j")
        assert kind == "eq"
        assert e == UFCall("col", [Var("k")]).as_expr()

    def test_lower_bound(self):
        kind, e = bounds_on_var(greater_equal(Var("k"), UFCall("rowptr", [Var("i")])), "k")
        assert kind == "lower"
        assert e == UFCall("rowptr", [Var("i")]).as_expr()

    def test_upper_bound(self):
        kind, e = bounds_on_var(less(Var("k"), UFCall("rowptr", [Var("i") + 1])), "k")
        assert kind == "upper"
        assert e == UFCall("rowptr", [Var("i") + 1]) - 1

    def test_absent_var(self):
        kind, e = bounds_on_var(less(Var("i"), Sym("N")), "k")
        assert kind == "none"
        assert e is None

    def test_var_inside_uf_arg_not_top_level(self):
        c = equals(UFCall("f", [Var("k")]), Sym("N"))
        kind, _ = bounds_on_var(c, "k")
        assert kind == "none"

    def test_non_unit_coefficient_refused(self):
        c = equals(2 * Var("i"), Sym("N"))
        kind, _ = bounds_on_var(c, "i")
        assert kind == "none"


class TestSubstitution:
    def test_substitute_preserves_type(self):
        c = less(Var("i"), Sym("N")).substitute_vars({"i": Var("x")})
        assert isinstance(c, Geq)
        assert c.mentions_var("x")
        assert not c.mentions_var("i")

    def test_rename_ufs(self):
        c = equals(UFCall("row", [Var("n")]), Var("i")).rename_ufs({"row": "row1"})
        assert c.uf_names() == {"row1"}

    def test_uf_calls_collected(self):
        c = less_equal(UFCall("rowptr", [Var("i")]), Var("k"))
        assert [u.name for u in c.uf_calls()] == ["rowptr"]


class TestImmutability:
    def test_constraint_immutable(self):
        c = less(Var("i"), Sym("N"))
        with pytest.raises(AttributeError):
            c.expr = None
