"""Unit tests for the FloorDiv atom (used by loop tiling)."""

import pytest

from repro.ir import Conjunction, FloorDiv, Sym, Var, equals, greater_equal
from repro.ir.conjunction import _eval_expr
from repro.spf import SymbolTable, print_expr


class TestConstruction:
    def test_basic(self):
        fd = FloorDiv(Sym("N") - 1, 4)
        assert fd.denom == 4
        assert fd.numer == Sym("N") - 1

    def test_nonpositive_denominator_rejected(self):
        with pytest.raises(ValueError):
            FloorDiv(Var("i"), 0)
        with pytest.raises(ValueError):
            FloorDiv(Var("i"), -2)

    def test_non_int_denominator_rejected(self):
        with pytest.raises(ValueError):
            FloorDiv(Var("i"), 2.5)

    def test_equality_and_hash(self):
        a = FloorDiv(Var("i") + 1, 3)
        b = FloorDiv(Var("i") + 1, 3)
        assert a == b and hash(a) == hash(b)
        assert a != FloorDiv(Var("i") + 1, 4)

    def test_str(self):
        assert str(FloorDiv(Sym("N") - 1, 8)) == "(N - 1) // 8"


class TestAlgebra:
    def test_var_names_descend(self):
        e = FloorDiv(Var("i") + Sym("N"), 2).as_expr()
        assert e.var_names() == {"i"}
        assert e.sym_names() == {"N"}

    def test_substitution_recurses(self):
        e = FloorDiv(Var("i"), 2).as_expr()
        out = e.substitute_vars({"i": Var("x") + 4})
        assert out == FloorDiv(Var("x") + 4, 2).as_expr()

    def test_arithmetic(self):
        e = FloorDiv(Var("i"), 2) + 1
        assert e.coeff(FloorDiv(Var("i"), 2)) == 1
        assert e.const == 1


class TestEvaluation:
    def test_eval(self):
        e = FloorDiv(Var("i") - 1, 4).as_expr()
        assert _eval_expr(e, {"i": 17}) == 4
        assert _eval_expr(e, {"i": 16}) == 3

    def test_python_floor_semantics_for_negatives(self):
        e = FloorDiv(Var("i"), 4).as_expr()
        assert _eval_expr(e, {"i": -1}) == -1

    def test_in_constraint(self):
        c = greater_equal(FloorDiv(Sym("N"), 2), Var("t"))
        conj = Conjunction([c])
        assert conj.evaluate({"N": 10, "t": 5})
        assert not conj.evaluate({"N": 10, "t": 6})


class TestPrinting:
    def test_python(self):
        e = FloorDiv(Sym("N") - 1, 8).as_expr() + 1
        text = print_expr(e, SymbolTable(), "py")
        assert text == "((N - 1) // 8) + 1"

    def test_c(self):
        e = FloorDiv(Sym("N") - 1, 8).as_expr()
        text = print_expr(e, SymbolTable(), "c")
        assert "/ 8" in text
