"""Invariants of the hash-consed (interned) IR terms.

Interning is an optimization, never a semantic requirement: these tests
pin down the invariants the memo layers rely on — canonicalization makes
algebraically equal affine expressions *identical*, parsed and
programmatically built terms agree on hash/equality, and the intern
tables behave under concurrent construction.
"""

import threading

import pytest

from repro.ir import memo
from repro.ir.parser import parse_relation, parse_set
from repro.ir.terms import Expr, Mod, Mul, Sym, UFCall, Var


class TestCanonicalization:
    def test_add_sub_roundtrip_is_identity(self):
        a = Var("i") + 2 * Var("j") + 3
        b = Var("k") - Sym("NR")
        assert (a + b) - b == a

    def test_roundtrip_is_same_object_when_interned(self):
        if not memo.ENABLED:
            pytest.skip("interning disabled via REPRO_IR_MEMO=0")
        a = Var("i") + 2 * Var("j") + 3
        b = Var("k") - Sym("NR")
        assert ((a + b) - b) is a

    def test_term_order_does_not_matter(self):
        x, y = Var("x"), Var("y")
        assert x + y == y + x
        assert Expr(terms=((x, 1), (y, 2))) == Expr(terms=((y, 2), (x, 1)))

    def test_zero_coefficients_dropped(self):
        x = Var("x")
        assert (x - x) == Expr(0)
        assert Expr(terms=((x, 0),)) == Expr(0)

    def test_distribution_over_scalar(self):
        e = Var("i") + 2 * Var("j") + 3
        assert 2 * e == e + e

    def test_uf_args_normalized(self):
        i = Var("i")
        assert UFCall("rowptr", [i + 1 - 1]) == UFCall("rowptr", [i])


class TestInternedVsParsed:
    """Terms built via the parser and via the API must be interchangeable."""

    def test_parsed_set_equals_programmatic(self):
        s1 = parse_set("{[i] : 0 <= i < N}")
        s2 = parse_set("{[i] : 0 <= i < N}")
        assert s1 == s2
        assert hash(s1.conjunctions[0]) == hash(s2.conjunctions[0])

    def test_parsed_relation_constraints_interned(self):
        r1 = parse_relation("{[i] -> [j] : j = col(i)}")
        r2 = parse_relation("{[i] -> [j] : j = col(i)}")
        c1 = r1.conjunctions[0].constraints[0]
        c2 = r2.conjunctions[0].constraints[0]
        assert c1 == c2 and hash(c1) == hash(c2)
        if memo.ENABLED:
            assert c1.expr is c2.expr

    def test_parsed_expr_is_interned_instance(self):
        if not memo.ENABLED:
            pytest.skip("interning disabled via REPRO_IR_MEMO=0")
        rel = parse_relation("{[i] -> [j] : j = col(i) + 1}")
        expr = rel.conjunctions[0].constraints[0].expr
        rebuilt = Expr(
            const=expr.const, terms=tuple(expr.terms)
        )
        assert rebuilt is expr

    def test_hash_equal_across_atom_kinds(self):
        # Var/Sym with the same name must stay distinct.
        assert Var("N") != Sym("N")
        assert hash(Var("N")) != hash(Sym("N"))

    def test_opaque_atoms_intern(self):
        if not memo.ENABLED:
            pytest.skip("interning disabled via REPRO_IR_MEMO=0")
        assert Mul(Sym("NR"), Var("i")) is Mul(Sym("NR"), Var("i"))
        assert Mod(Var("i") + 1, 4) is Mod(Var("i") + 1, 4)


class TestThreadSafety:
    """Concurrent construction must yield consistent, equal terms.

    dict.setdefault makes the intern tables race-free; a loser thread gets
    the winner's instance.  Synthesis via threads exercises the memo
    tables too (results are interned, so racing stores write the same
    value).
    """

    def test_concurrent_interning_single_winner(self):
        results: list[Expr] = []
        barrier = threading.Barrier(8)

        def build():
            barrier.wait()
            e = Var("t0") + 3 * Var("t1") + UFCall("uf_ts", [Var("t0")])
            results.append(e)

        threads = [threading.Thread(target=build) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 8
        first = results[0]
        assert all(e == first for e in results)
        if memo.ENABLED:
            assert all(e is first for e in results)

    def test_concurrent_synthesis(self):
        from repro.formats import get_format
        from repro.synthesis import synthesize

        sources: dict[str, str] = {}
        errors: list[BaseException] = []
        barrier = threading.Barrier(4)

        def work(tag):
            try:
                barrier.wait()
                conv = synthesize(get_format("COO"), get_format("CSR"))
                sources[tag] = conv.source
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=work, args=(f"t{i}",)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(set(sources.values())) == 1
