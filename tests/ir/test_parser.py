"""Unit tests for the IEGenLib-style notation parser."""

import pytest

from repro.ir import (
    Mul,
    ParseError,
    Sym,
    UFCall,
    Var,
    parse_expr,
    parse_relation,
    parse_set,
)
from repro.ir.parser import tokenize


class TestTokenizer:
    def test_basic_tokens(self):
        kinds = [t[0] for t in tokenize("{[i] -> [j] : j <= i}")]
        assert kinds == ["{", "[", "name", "]", "->", "[", "name", "]", ":",
                         "name", "<=", "name", "}", "eof"]

    def test_junk_rejected(self):
        with pytest.raises(ParseError):
            tokenize("{[i] : i @ 3}")

    def test_keywords(self):
        kinds = [t[0] for t in tokenize("union and")]
        assert kinds == ["union", "and", "eof"]


class TestExprParsing:
    def test_precedence(self):
        e = parse_expr("2 * i + 3", ["i"])
        assert e == 2 * Var("i") + 3

    def test_unary_minus(self):
        assert parse_expr("-i + 1", ["i"]) == 1 - Var("i")

    def test_parentheses(self):
        assert parse_expr("2 * (i + 1)", ["i"]) == 2 * Var("i") + 2

    def test_uf_call_nested(self):
        e = parse_expr("f(g(i) + 1)", ["i"])
        inner = UFCall("g", [Var("i")])
        assert e == UFCall("f", [inner + 1]).as_expr()

    def test_multi_arg_uf(self):
        e = parse_expr("MORTON(i, j)", ["i", "j"])
        assert e == UFCall("MORTON", [Var("i"), Var("j")]).as_expr()

    def test_non_tuple_name_is_sym(self):
        e = parse_expr("i + N", ["i"])
        assert e == Var("i") + Sym("N")

    def test_sym_times_var_becomes_mul(self):
        e = parse_expr("ND * ii + d", ["ii", "d"])
        assert e == Mul(Sym("ND"), Var("ii")) + Var("d")

    def test_var_times_sym_commutes(self):
        e = parse_expr("ii * ND", ["ii"])
        assert e == Mul(Sym("ND"), Var("ii")).as_expr()

    def test_var_times_var_rejected(self):
        with pytest.raises(ParseError):
            parse_expr("i * j", ["i", "j"])

    def test_int_times_int_folds(self):
        assert parse_expr("3 * 4") == 12


class TestSetParsing:
    def test_unconstrained(self):
        s = parse_set("{[i,j]}")
        assert s.tuple_vars == ("i", "j")
        assert len(s.single_conjunction) == 0

    def test_chained_comparison_expands(self):
        s = parse_set("{[i] : 0 <= i < N}")
        assert len(s.single_conjunction) == 2

    def test_union(self):
        s = parse_set("{[i] : i = 0} union {[i] : i = 1}")
        assert len(s.conjunctions) == 2

    def test_union_tuple_mismatch_rejected(self):
        with pytest.raises(ParseError):
            parse_set("{[i]} union {[j]}")

    def test_and_keyword(self):
        s = parse_set("{[i] : 0 <= i and i < N}")
        assert len(s.single_conjunction) == 2

    def test_missing_comparison_rejected(self):
        with pytest.raises(ParseError):
            parse_set("{[i] : i}")

    def test_trailing_junk_rejected(self):
        with pytest.raises(ParseError):
            parse_set("{[i]} extra")


class TestRelationParsing:
    def test_basic(self):
        r = parse_relation("{[i] -> [j] : j = i}")
        assert r.in_vars == ("i",)
        assert r.out_vars == ("j",)

    def test_empty_output_tuple(self):
        r = parse_relation("{[n, ii, jj] -> [n2] : n2 = n}")
        assert r.out_arity == 1

    def test_equality_double_equals(self):
        r = parse_relation("{[i] -> [j] : j == i}")
        assert r.contains((4,), (4,), {})

    def test_set_rejected_as_relation(self):
        with pytest.raises(ParseError):
            parse_relation("{[i] : i = 0}")

    def test_table1_coo_descriptor_parses(self):
        text = (
            "{[n, ii, jj] -> [i, j] : row1(n) = i && col1(n) = j && ii = i"
            " && jj = j && 0 <= i < NR && 0 <= j < NC && 0 <= n < NNZ}"
        )
        r = parse_relation(text)
        assert r.uf_names() == {"row1", "col1"}
        assert r.sym_names() == {"NR", "NC", "NNZ"}

    def test_table1_dia_descriptor_parses(self):
        text = (
            "{[ii, d, jj] -> [i, j] : i = ii && 0 <= i < NR && 0 <= d < ND"
            " && j = i + off(d) && 0 <= j < NC}"
        )
        r = parse_relation(text)
        assert r.uf_names() == {"off"}

    def test_dia_data_access_with_product(self):
        r = parse_relation("{[ii, d, jj] -> [kd] : kd = ND * ii + d}")
        assert r.contains((2, 1, 9), (7,), {"ND": 3})


class TestFloorDivParsing:
    def test_basic(self):
        from repro.ir import FloorDiv

        e = parse_expr("(i) // 4", ["i"])
        assert e == FloorDiv(Var("i"), 4).as_expr()

    def test_roundtrip(self):
        from repro.ir import FloorDiv

        e = FloorDiv(Sym("N") - 1, 8) + 1
        assert parse_expr(str(e)) == e

    def test_numerator_expression(self):
        from repro.ir import FloorDiv

        e = parse_expr("(N - 1) // 8", [])
        assert e == FloorDiv(Sym("N") - 1, 8).as_expr()

    def test_non_literal_divisor_rejected(self):
        with pytest.raises(ParseError):
            parse_expr("i // N", ["i"])

    def test_zero_divisor_rejected(self):
        with pytest.raises(ParseError):
            parse_expr("i // 0", ["i"])
