"""Unit tests for universal quantifier descriptions."""

import pytest

from repro.ir import (
    MonotonicQuantifier,
    OrderingQuantifier,
    UFCall,
    Var,
    lexicographic,
    morton,
)


class TestMonotonic:
    def test_nondecreasing_holds(self):
        q = MonotonicQuantifier("rowptr")
        assert q.holds_on([0, 0, 2, 5, 5])

    def test_nondecreasing_violated(self):
        q = MonotonicQuantifier("rowptr")
        assert not q.holds_on([0, 2, 1])

    def test_strict_rejects_plateau(self):
        q = MonotonicQuantifier("off", strict=True)
        assert q.holds_on([-2, 0, 3])
        assert not q.holds_on([-2, 0, 0])

    def test_str_shows_operator(self):
        assert "e1 <= e2" in str(MonotonicQuantifier("rowptr"))
        assert "e1 < e2" in str(MonotonicQuantifier("off", strict=True))

    def test_equality_and_hash(self):
        assert MonotonicQuantifier("f") == MonotonicQuantifier("f")
        assert MonotonicQuantifier("f") != MonotonicQuantifier("f", strict=True)
        assert hash(MonotonicQuantifier("f")) == hash(MonotonicQuantifier("f"))

    def test_invalid_name(self):
        with pytest.raises(ValueError):
            MonotonicQuantifier("not a name")


class TestOrdering:
    def test_lexicographic_keys(self):
        q = lexicographic(["i", "j"])
        assert q.key_exprs == (Var("i").as_expr(), Var("j").as_expr())
        assert q.strict

    def test_morton_key(self):
        q = morton(["i", "j"])
        assert q.key_exprs == (UFCall("MORTON", [Var("i"), Var("j")]).as_expr(),)
        assert q.uf_names() == {"MORTON"}

    def test_key_must_use_dense_vars(self):
        with pytest.raises(ValueError):
            OrderingQuantifier(["i"], [Var("j")])

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            OrderingQuantifier(["i"], [])

    def test_display_matches_table1_shape(self):
        q = morton(["i", "j"])
        text = q.display("n", ["row_m", "col_m"])
        assert "n1 < n2" in text
        assert "MORTON(row_m(n1), col_m(n1))" in text
        assert "MORTON(row_m(n2), col_m(n2))" in text

    def test_display_lexicographic_tuple(self):
        q = lexicographic(["i", "j"])
        text = q.display("n", ["row1", "col1"])
        assert "(row1(n1), col1(n1))" in text

    def test_display_arity_check(self):
        q = morton(["i", "j"])
        with pytest.raises(ValueError):
            q.display("n", ["row_m"])

    def test_equality(self):
        assert morton(["i", "j"]) == morton(["i", "j"])
        assert morton(["i", "j"]) != lexicographic(["i", "j"])
