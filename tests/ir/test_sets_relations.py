"""Unit tests for IntSet and Relation algebra."""

import pytest

from repro.ir import (
    IntSet,
    Relation,
    Var,
    equals,
    less,
    parse_relation,
    parse_set,
    universe,
)


class TestIntSetBasics:
    def test_duplicate_tuple_var_rejected(self):
        with pytest.raises(ValueError):
            IntSet(["i", "i"])

    def test_universe_has_empty_conjunction(self):
        u = universe(["i", "j"])
        assert len(u.single_conjunction) == 0
        assert u.contains((5, -3), {})

    def test_str_roundtrip_through_parser(self):
        s = parse_set("{[i,j] : 0 <= i < N && j = i + 1}")
        again = parse_set(str(s))
        assert again == s

    def test_with_tuple_vars(self):
        s = parse_set("{[i] : 0 <= i < N}").with_tuple_vars(["x"])
        assert s.tuple_vars == ("x",)
        assert s.contains((0,), {"N": 3})
        assert not s.contains((3,), {"N": 3})

    def test_intersect(self):
        a = parse_set("{[i] : 0 <= i}")
        b = parse_set("{[i] : i < 4}")
        both = a.intersect(b)
        assert both.contains((3,), {})
        assert not both.contains((4,), {})

    def test_union_membership(self):
        a = parse_set("{[i] : i = 0}")
        b = parse_set("{[i] : i = 5}")
        u = a.union(b)
        assert u.contains((0,), {})
        assert u.contains((5,), {})
        assert not u.contains((1,), {})

    def test_project_out(self):
        s = parse_set("{[i,j] : 0 <= i < 4 && j = i + 1}")
        p = s.project_out("j")
        assert p.tuple_vars == ("i",)
        assert p.contains((2,), {})

    def test_arity(self):
        assert parse_set("{[a,b,c]}").arity == 3


class TestEnumeration:
    def test_rectangle(self):
        s = parse_set("{[i,j] : 0 <= i < 2 && 0 <= j < 3}")
        pts = sorted(s.enumerate_points({}))
        assert pts == [(i, j) for i in range(2) for j in range(3)]

    def test_symbolic_bound(self):
        s = parse_set("{[i] : 0 <= i < N}")
        assert sorted(s.enumerate_points({"N": 4})) == [(0,), (1,), (2,), (3,)]

    def test_uf_bounds_csr_walk(self):
        s = parse_set(
            "{[i,k,j] : 0 <= i < N && rowptr(i) <= k < rowptr(i+1) && j = col(k)}"
        )
        env = {"N": 2, "rowptr": [0, 2, 3], "col": [1, 3, 0]}
        pts = sorted(s.enumerate_points(env))
        assert pts == [(0, 0, 1), (0, 1, 3), (1, 2, 0)]

    def test_triangular(self):
        s = parse_set("{[i,j] : 0 <= i < 3 && 0 <= j <= i}")
        pts = list(s.enumerate_points({}))
        assert len(pts) == 6

    def test_empty(self):
        s = parse_set("{[i] : 0 <= i < 0}")
        assert list(s.enumerate_points({})) == []


class TestRelationBasics:
    def test_inverse_swaps_tuples(self):
        r = parse_relation("{[i] -> [j] : j = i + 1}")
        inv = r.inverse()
        assert inv.in_vars == ("j",)
        assert inv.out_vars == ("i",)
        assert inv.contains((3,), (2,), {})

    def test_inverse_involution(self):
        r = parse_relation("{[i,k] -> [j] : j = col(k) && 0 <= i < N}")
        assert r.inverse().inverse() == r

    def test_contains(self):
        r = parse_relation("{[i] -> [j] : j = 2 * i}")
        assert r.contains((3,), (6,), {})
        assert not r.contains((3,), (7,), {})

    def test_shared_names_rejected(self):
        with pytest.raises(ValueError):
            Relation(["i"], ["i"])

    def test_as_set(self):
        r = parse_relation("{[i] -> [j] : j = i + 1 && 0 <= i < 3}")
        s = r.as_set()
        assert s.tuple_vars == ("i", "j")
        assert sorted(s.enumerate_points({})) == [(0, 1), (1, 2), (2, 3)]

    def test_str_roundtrip_through_parser(self):
        r = parse_relation("{[n,ii] -> [i] : i = row(n) && ii = i}")
        assert parse_relation(str(r)) == r


class TestCompose:
    def test_affine_compose(self):
        first = parse_relation("{[i] -> [j] : j = i + 1}")
        second = parse_relation("{[j] -> [k] : k = 2 * j}")
        comp = second.compose(first)
        assert comp.in_vars == ("i",)
        assert comp.contains((3,), (8,), {})
        assert not comp.contains((3,), (7,), {})

    def test_compose_arity_check(self):
        first = parse_relation("{[i] -> [a,b] : a = i && b = i}")
        second = parse_relation("{[j] -> [k] : k = j}")
        with pytest.raises(ValueError):
            second.compose(first)

    def test_compose_with_ufs_coo_to_csr(self):
        coo = parse_relation(
            "{[n,ii,jj] -> [i,j] : row1(n) = i && col1(n) = j && ii = i && jj = j"
            " && 0 <= i < NR && 0 <= j < NC && 0 <= n < NNZ}"
        )
        csr_inv = parse_relation(
            "{[ii2,k,jj2] -> [i,j] : ii2 = i && jj2 = j && col2(k) = j"
            " && 0 <= ii2 < NR && rowptr(ii2) <= k < rowptr(ii2+1)}"
        ).inverse()
        comp = csr_inv.compose(coo)
        assert comp.in_vars == ("n", "ii", "jj")
        assert comp.out_vars == ("ii2", "k", "jj2")
        # The dense mid tuple must be gone.
        assert not (comp.var_names() & {"i", "j"})
        # Semantics on a concrete instance: matrix [[0,a],[b,0]]
        env = {
            "NR": 2, "NC": 2, "NNZ": 2,
            "row1": [0, 1], "col1": [1, 0],
            "rowptr": [0, 1, 2], "col2": [1, 0],
        }
        assert comp.contains((0, 0, 1), (0, 0, 1), env)
        assert comp.contains((1, 1, 0), (1, 1, 0), env)
        assert not comp.contains((0, 0, 1), (1, 1, 0), env)

    def test_compose_point_semantics_match_manual(self):
        # f: i -> i+2 on 0<=i<4 ; g: j -> 3j. compose = 3(i+2)
        f = parse_relation("{[i] -> [j] : j = i + 2 && 0 <= i < 4}")
        g = parse_relation("{[j] -> [k] : k = 3 * j}")
        comp = g.compose(f)
        for i in range(4):
            assert comp.contains((i,), (3 * (i + 2),), {})
        assert not comp.contains((4,), (18,), {})


class TestApplyToSet:
    def test_loop_interchange_example(self):
        # The Section 2.1 example: interchange [i,j] -> [j,i].
        space = parse_set("{[i,j] : 0 <= i < M && 0 <= j < N}")
        interchange = parse_relation("{[i,j] -> [jo,io] : jo = j && io = i}")
        out = interchange.apply_to_set(space)
        assert out.tuple_vars == ("jo", "io")
        env = {"M": 2, "N": 3}
        pts = sorted(out.enumerate_points(env))
        assert pts == sorted((j, i) for i in range(2) for j in range(3))


class TestDomainRange:
    def test_domain(self):
        r = parse_relation("{[i] -> [j] : j = i + 1 && 0 <= i < 3}")
        d = r.domain()
        assert sorted(d.enumerate_points({})) == [(0,), (1,), (2,)]

    def test_range(self):
        r = parse_relation("{[i] -> [j] : j = i + 1 && 0 <= i < 3}")
        rng = r.range()
        assert sorted(rng.enumerate_points({})) == [(1,), (2,), (3,)]


class TestFunctionality:
    def test_function_detected(self):
        r = parse_relation("{[n] -> [i,j] : i = row(n) && j = col(n)}")
        assert r.is_function_syntactically()

    def test_non_function_detected(self):
        r = parse_relation("{[n] -> [i,j] : i = row(n)}")
        assert not r.is_function_syntactically()

    def test_chained_definitions(self):
        r = parse_relation("{[n] -> [i,j] : i = row(n) && j = i + 1}")
        assert r.is_function_syntactically()
