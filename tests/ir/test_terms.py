"""Unit tests for the symbolic expression layer."""

import pytest

from repro.ir import Expr, Mul, Sym, UFCall, Var, as_expr


class TestAtoms:
    def test_var_identity(self):
        assert Var("i") == Var("i")
        assert Var("i") != Var("j")
        assert hash(Var("i")) == hash(Var("i"))

    def test_var_is_not_sym(self):
        assert Var("N") != Sym("N")

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError):
            Var("not an identifier")
        with pytest.raises(ValueError):
            Sym("")
        with pytest.raises(ValueError):
            UFCall("2bad", [Var("i")])

    def test_ufcall_needs_args(self):
        with pytest.raises(ValueError):
            UFCall("f", [])

    def test_ufcall_coerces_args(self):
        call = UFCall("rowptr", [Var("i") + 1])
        assert call.args[0] == Var("i") + 1
        assert call.arity == 1

    def test_ufcall_equality_includes_args(self):
        assert UFCall("f", [Var("i")]) == UFCall("f", [Var("i")])
        assert UFCall("f", [Var("i")]) != UFCall("f", [Var("j")])
        assert UFCall("f", [Var("i")]) != UFCall("g", [Var("i")])

    def test_atoms_are_immutable(self):
        with pytest.raises(AttributeError):
            Var("i").name = "j"
        with pytest.raises(AttributeError):
            Sym("N").name = "M"

    def test_mul_requires_sym(self):
        with pytest.raises(TypeError):
            Mul(Var("i"), Var("j"))

    def test_mul_str(self):
        assert str(Mul(Sym("ND"), Var("ii"))) == "ND * (ii)"


class TestExprArithmetic:
    def test_addition_merges_terms(self):
        e = Var("i") + Var("i")
        assert e.coeff(Var("i")) == 2

    def test_subtraction_cancels(self):
        e = Var("i") + 3 - Var("i")
        assert e.is_constant()
        assert e.const == 3

    def test_zero_coefficients_dropped(self):
        e = Var("i") * 0 + 5
        assert not list(e.atoms())

    def test_scalar_multiplication(self):
        e = (Var("i") + 2) * 3
        assert e.const == 6
        assert e.coeff(Var("i")) == 3

    def test_negation(self):
        e = -(Var("i") - Sym("N"))
        assert e.coeff(Var("i")) == -1
        assert e.coeff(Sym("N")) == 1

    def test_expr_by_expr_multiplication_rejected(self):
        with pytest.raises(TypeError):
            (Var("i") + 1) * (Var("j") + 1)

    def test_constant_expr_multiplication_allowed(self):
        e = (Var("i") + 1) * as_expr(2)
        assert e.coeff(Var("i")) == 2

    def test_canonical_equality(self):
        a = Var("i") + Sym("N") - 4
        b = Sym("N") - 4 + Var("i")
        assert a == b
        assert hash(a) == hash(b)

    def test_int_comparison(self):
        assert as_expr(7) == 7
        assert (Var("i") - Var("i") + 7) == 7

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            as_expr(True)


class TestExprInspection:
    def test_var_names_descend_into_uf_args(self):
        e = UFCall("rowptr", [Var("i") + 1]) + Var("k")
        assert e.var_names() == {"i", "k"}

    def test_var_names_descend_into_mul(self):
        e = Mul(Sym("ND"), Var("ii") + Var("d")).as_expr()
        assert e.var_names() == {"ii", "d"}
        assert e.sym_names() == {"ND"}

    def test_uf_calls_listed(self):
        e = UFCall("f", [UFCall("g", [Var("i")])]) + 1
        names = [c.name for c in e.uf_calls()]
        assert names == ["f", "g"]

    def test_coeff_and_without(self):
        e = 2 * Var("i") + 3 * Sym("N") + 1
        assert e.coeff(Var("i")) == 2
        stripped = e.without(Var("i"))
        assert stripped.coeff(Var("i")) == 0
        assert stripped.coeff(Sym("N")) == 3


class TestSubstitution:
    def test_var_substitution(self):
        e = Var("i") + Var("j")
        out = e.substitute_vars({"i": Var("k") + 1})
        assert out == Var("k") + Var("j") + 1

    def test_substitution_reaches_uf_args(self):
        e = UFCall("rowptr", [Var("i") + 1]).as_expr()
        out = e.substitute_vars({"i": Var("x")})
        assert out == UFCall("rowptr", [Var("x") + 1]).as_expr()

    def test_uf_call_replacement_after_arg_rewrite(self):
        target = UFCall("row", [Var("x")])
        e = UFCall("row", [Var("i")]).as_expr()
        out = e.substitute({Var("i"): Var("x"), target: Var("ii")})
        assert out == Var("ii").as_expr()

    def test_rename_vars(self):
        e = Var("i") + UFCall("f", [Var("i")])
        out = e.rename_vars({"i": "z"})
        assert out.var_names() == {"z"}

    def test_rename_ufs(self):
        e = UFCall("row", [Var("n")]) + UFCall("col", [Var("n")])
        out = e.rename_ufs({"row": "row1"})
        assert out.uf_names() == {"row1", "col"}

    def test_mul_sym_substituted_by_constant(self):
        e = Mul(Sym("ND"), Var("ii")).as_expr() + Var("d")
        out = e.substitute({Sym("ND"): 4})
        assert out == 4 * Var("ii") + Var("d")

    def test_mul_sym_substituted_by_sym(self):
        e = Mul(Sym("ND"), Var("ii")).as_expr()
        out = e.substitute({Sym("ND"): Sym("K")})
        assert out == Mul(Sym("K"), Var("ii")).as_expr()

    def test_mul_factor_substituted(self):
        e = Mul(Sym("ND"), Var("ii")).as_expr()
        out = e.substitute_vars({"ii": Var("x") + 1})
        assert out == Mul(Sym("ND"), Var("x") + 1).as_expr()


class TestPrinting:
    def test_simple(self):
        assert str(Var("i") + 1) == "i + 1"

    def test_negative_coefficient(self):
        assert str(-Var("i") + Sym("N")) == "-i + N"

    def test_constant_only(self):
        assert str(as_expr(-3)) == "-3"

    def test_uf_call(self):
        assert str(UFCall("rowptr", [Var("i") + 1]).as_expr()) == "rowptr(i + 1)"
