"""Tests for hand-written and descriptor-generated sparse kernels."""

import random

import pytest

from repro.formats import bcsr, coo3d, csc, csr, dia, get_format, mcoo, scoo
from repro.kernels import (
    KERNELS,
    KernelError,
    dense_spmv,
    dense_spmv_t,
    frobenius_sq,
    row_sums,
    run_kernel,
    spmv,
    spmv_bcsr,
    spmv_coo,
    spmv_csc,
    spmv_csr,
    spmv_dia,
    spmv_ell,
    spmv_t_csc,
    spmv_t_csr,
    synthesize_kernel,
)
from repro.runtime import (
    BCSRMatrix,
    COOMatrix,
    CSCMatrix,
    CSRMatrix,
    DIAMatrix,
    ELLMatrix,
    MortonCOOMatrix,
)


def random_dense(nrows, ncols, density=0.35, seed=0):
    rng = random.Random(seed)
    return [
        [
            round(rng.uniform(-3, 3), 3) if rng.random() < density else 0.0
            for _ in range(ncols)
        ]
        for _ in range(nrows)
    ]


DENSE = random_dense(9, 11, seed=21)
X = [round(random.Random(5).uniform(-1, 1), 3) for _ in range(11)]
X_ROWS = [round(random.Random(6).uniform(-1, 1), 3) for _ in range(9)]
REF_Y = dense_spmv(DENSE, X)
REF_YT = dense_spmv_t(DENSE, X_ROWS)


def close(a, b):
    return all(abs(p - q) < 1e-9 for p, q in zip(a, b)) and len(a) == len(b)


class TestHandwrittenSpMV:
    def test_coo(self):
        assert close(spmv_coo(COOMatrix.from_dense(DENSE), X), REF_Y)

    def test_csr(self):
        assert close(spmv_csr(CSRMatrix.from_dense(DENSE), X), REF_Y)

    def test_csc(self):
        assert close(spmv_csc(CSCMatrix.from_dense(DENSE), X), REF_Y)

    def test_dia(self):
        assert close(spmv_dia(DIAMatrix.from_dense(DENSE), X), REF_Y)

    def test_bcsr(self):
        assert close(spmv_bcsr(BCSRMatrix.from_dense(DENSE, 3), X), REF_Y)

    def test_ell(self):
        assert close(spmv_ell(ELLMatrix.from_dense(DENSE), X), REF_Y)

    def test_transposed_variants(self):
        assert close(spmv_t_csc(CSCMatrix.from_dense(DENSE), X_ROWS), REF_YT)
        assert close(spmv_t_csr(CSRMatrix.from_dense(DENSE), X_ROWS), REF_YT)

    def test_dispatch(self):
        for container in (
            COOMatrix.from_dense(DENSE),
            CSRMatrix.from_dense(DENSE),
            CSCMatrix.from_dense(DENSE),
            DIAMatrix.from_dense(DENSE),
            BCSRMatrix.from_dense(DENSE, 2),
            ELLMatrix.from_dense(DENSE),
        ):
            assert close(spmv(container, X), REF_Y)

    def test_dispatch_unknown(self):
        with pytest.raises(TypeError):
            spmv(object(), X)

    def test_row_sums(self):
        out = row_sums(CSRMatrix.from_dense(DENSE))
        assert close(out, [sum(r) for r in DENSE])

    def test_frobenius(self):
        expected = sum(v * v for row in DENSE for v in row)
        for container in (
            COOMatrix.from_dense(DENSE),
            CSRMatrix.from_dense(DENSE),
            CSCMatrix.from_dense(DENSE),
            DIAMatrix.from_dense(DENSE),
        ):
            assert abs(frobenius_sq(container) - expected) < 1e-9


class TestGeneratedKernels:
    FORMATS = ["SCOO", "MCOO", "CSR", "CSC", "DIA"]

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_spmv_matches_dense(self, fmt):
        kernel = synthesize_kernel(get_format(fmt), "spmv")
        assert kernel.source.startswith("def ")
        container = _container_for(fmt)
        assert close(run_kernel(container, "spmv", x=X), REF_Y)

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_spmv_t_matches_dense(self, fmt):
        container = _container_for(fmt)
        assert close(run_kernel(container, "spmv_t", x=X_ROWS), REF_YT)

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_row_sums(self, fmt):
        container = _container_for(fmt)
        assert close(run_kernel(container, "row_sums"),
                     [sum(r) for r in DENSE])

    def test_value_sum(self):
        container = CSRMatrix.from_dense(DENSE)
        total = run_kernel(container, "value_sum")
        assert abs(total - sum(sum(r) for r in DENSE)) < 1e-9

    def test_scale_does_not_mutate(self):
        container = CSRMatrix.from_dense(DENSE)
        before = list(container.val)
        scaled = run_kernel(container, "scale", alpha=3.0)
        assert container.val == before
        assert close(scaled, [3.0 * v for v in before])

    def test_generated_matches_handwritten(self):
        container = DIAMatrix.from_dense(DENSE)
        assert close(run_kernel(container, "spmv", x=X),
                     spmv_dia(container, X))

    def test_bcsr_source_kernel(self):
        kernel = synthesize_kernel(bcsr(2), "spmv")
        container = BCSRMatrix.from_dense(DENSE, 2)
        from repro.formats import container_to_env

        env = container_to_env(container)
        env["Adata"] = env.pop("Asrc")
        env["x"] = X
        out = kernel(**{p: env[p] for p in kernel.params})
        assert close(out["y"], REF_Y)

    def test_3d_value_sum(self):
        kernel = synthesize_kernel(coo3d(sorted_lex=True), "value_sum")
        out = kernel(
            row1=[0, 1], col1=[1, 0], z1=[0, 1], Adata=[2.0, 3.0],
            NR=2, NC=2, NZ=2, NNZ=2,
        )
        assert out["total"] == 5.0

    def test_rank_check(self):
        with pytest.raises(KernelError):
            synthesize_kernel(coo3d(), "spmv")

    def test_unknown_kernel(self):
        with pytest.raises(KernelError):
            synthesize_kernel(csr(), "cholesky")

    def test_kernel_catalog(self):
        assert set(KERNELS) == {"spmv", "spmv_t", "row_sums", "scale",
                                "value_sum"}

    def test_c_source_emitted(self):
        kernel = synthesize_kernel(csr(), "spmv")
        assert "for (int" in kernel.c_source

    def test_generated_csr_spmv_shape(self):
        # The canonical CSR SpMV loop must come out of the generator.
        kernel = synthesize_kernel(csr(), "spmv")
        assert "for k in range(rowptr[ii], rowptr[ii + 1]):" in kernel.source
        assert "y[ii] += Adata[k] * x[jj]" in kernel.source


def _container_for(fmt: str):
    if fmt == "SCOO":
        return COOMatrix.from_dense(DENSE)
    if fmt == "MCOO":
        return MortonCOOMatrix.from_coo(COOMatrix.from_dense(DENSE))
    if fmt == "CSR":
        return CSRMatrix.from_dense(DENSE)
    if fmt == "CSC":
        return CSCMatrix.from_dense(DENSE)
    if fmt == "DIA":
        return DIAMatrix.from_dense(DENSE)
    raise KeyError(fmt)
