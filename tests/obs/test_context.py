"""Cross-thread trace contexts: capture, adopt, detached spans, trace ids."""

import threading

import pytest

import repro.obs as obs
from repro.obs import TRACER, TraceContext


@pytest.fixture(autouse=True)
def clean_tracer():
    obs.reset_all()
    TRACER.disable()
    yield
    obs.reset_all()
    TRACER.disable()


class TestTraceIds:
    def test_new_trace_ids_are_valid_and_unique(self):
        ids = {obs.new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(obs.valid_trace_id(t) for t in ids)

    def test_valid_trace_id_rejects_junk(self):
        assert obs.valid_trace_id("abc-DEF_1.2")
        assert not obs.valid_trace_id("")
        assert not obs.valid_trace_id("has space")
        assert not obs.valid_trace_id("x" * 65)
        assert not obs.valid_trace_id(123)
        assert not obs.valid_trace_id("a\nb")

    def test_root_spans_start_a_trace_children_inherit(self):
        TRACER.enable()
        with obs.span("root") as root:
            with obs.span("child") as child:
                pass
        assert root.trace_id
        assert child.trace_id == root.trace_id


class TestDetachedSpans:
    def test_open_span_is_started_and_off_the_stack(self):
        root = TRACER.open_span("serve.request", category="serve")
        assert root.trace_id and root.span_id > 0
        assert root.start > 0 and root.tid != 0
        assert TRACER.current() is None

    def test_close_span_is_not_registered_by_default(self):
        root = TRACER.open_span("serve.request")
        TRACER.close_span(root)
        assert root.end >= root.start
        assert TRACER.finished_roots() == []

    def test_register_true_records_the_root(self):
        root = TRACER.open_span("serve.request")
        TRACER.close_span(root, register=True)
        assert TRACER.finished_roots() == [root]

    def test_open_span_honors_supplied_trace_id(self):
        root = TRACER.open_span("serve.request", trace_id="given-id")
        assert root.trace_id == "given-id"

    def test_open_span_registers_its_thread_name(self):
        root = TRACER.open_span("serve.request")
        assert TRACER.thread_names()[root.tid] == (
            threading.current_thread().name
        )


class TestAdopt:
    def test_worker_spans_join_the_tree_and_leave_no_orphan_roots(self):
        root = TRACER.open_span("serve.request", trace_id="t1")
        ctx = TraceContext(trace_id="t1", parent=root, active=True)

        def worker():
            with TRACER.adopt(ctx):
                with obs.span("convert"):
                    with obs.span("execute"):
                        pass

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        TRACER.close_span(root)
        assert [c.name for c in root.children] == ["convert"]
        assert root.children[0].trace_id == "t1"
        assert root.children[0].children[0].trace_id == "t1"
        # The conversion's spans must not root on the worker thread.
        assert TRACER.finished_roots() == []

    def test_adopt_none_is_a_noop(self):
        with TRACER.adopt(None):
            assert not TRACER.active()
            assert TRACER.current() is None

    def test_adopt_forces_and_restores_override_and_detail(self):
        ctx = TraceContext(trace_id="t", active=True, detail=False)
        assert not TRACER.active() and TRACER.stmt_detail()
        with TRACER.adopt(ctx):
            assert TRACER.active()
            assert not TRACER.stmt_detail()
        assert not TRACER.active()
        assert TRACER.stmt_detail()

    def test_adopt_pops_spans_leaked_by_a_mid_span_crash(self):
        root = TRACER.open_span("serve.request")
        ctx = TraceContext(trace_id=root.trace_id, parent=root, active=True)
        with pytest.raises(RuntimeError):
            with TRACER.adopt(ctx):
                obs.span("will-leak").__enter__()  # never exited
                raise RuntimeError("boom")
        assert TRACER.current() is None

    def test_capture_round_trip(self):
        TRACER.enable()
        with obs.span("outer") as outer:
            ctx = TRACER.capture()
            assert ctx.parent is outer
            assert ctx.trace_id == outer.trace_id
            assert ctx.active and ctx.detail
        assert TRACER.capture().parent is None

    def test_adopted_execution_skips_stmt_detail_but_keeps_execute(self):
        # What the daemon relies on: detail=False still produces the
        # execute span, without compiling per-statement instrumentation.
        from repro import get_format
        from repro.datagen import random_uniform
        from repro.synthesis import synthesize

        conv = synthesize(get_format("SCOO"), get_format("CSR"))
        matrix = random_uniform(8, 8, 12, seed=3)
        root = TRACER.open_span("serve.request")
        ctx = TraceContext(
            trace_id=root.trace_id, parent=root, active=True, detail=False
        )
        with TRACER.adopt(ctx):
            from repro.formats import container_to_env

            conv.run_native(**container_to_env(matrix))
        TRACER.close_span(root)
        names = [s.name for s in root.walk()]
        assert "execute" in names
        assert not any(s.category == "execute.stmt" for s in root.walk())
