"""Span trees: nesting, thread attribution, forcing, the no-op path."""

import threading

import pytest

import repro.obs as obs
from repro.obs import NOOP_SPAN, Span, TRACER


@pytest.fixture(autouse=True)
def clean_tracer():
    TRACER.disable()
    TRACER.clear()
    yield
    TRACER.disable()
    TRACER.clear()


class TestNesting:
    def test_spans_nest_into_a_tree(self):
        TRACER.enable()
        with obs.span("root", category="test"):
            with obs.span("child_a"):
                with obs.span("grandchild"):
                    pass
            with obs.span("child_b"):
                pass
        roots = TRACER.finished_roots()
        assert len(roots) == 1
        root = roots[0]
        assert root.name == "root"
        assert [c.name for c in root.children] == ["child_a", "child_b"]
        assert [c.name for c in root.children[0].children] == ["grandchild"]

    def test_walk_is_depth_first(self):
        TRACER.enable()
        with obs.span("a"):
            with obs.span("b"):
                with obs.span("c"):
                    pass
            with obs.span("d"):
                pass
        names = [s.name for s in TRACER.finished_roots()[0].walk()]
        assert names == ["a", "b", "c", "d"]

    def test_durations_are_monotone(self):
        TRACER.enable()
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        outer = TRACER.finished_roots()[0]
        inner = outer.children[0]
        assert outer.duration >= inner.duration >= 0.0

    def test_add_span_attaches_to_current_parent(self):
        TRACER.enable()
        with obs.span("parent"):
            obs.add_span("phase", 1.0, 2.5, category="synthesis", n=3)
        root = TRACER.finished_roots()[0]
        assert [c.name for c in root.children] == ["phase"]
        child = root.children[0]
        assert child.duration == pytest.approx(1.5)
        assert child.attrs == {"n": 3}

    def test_add_span_without_parent_becomes_root(self):
        TRACER.enable()
        obs.add_span("orphan", 0.0, 1.0)
        assert [r.name for r in TRACER.finished_roots()] == ["orphan"]

    def test_exception_marks_error_and_closes_span(self):
        TRACER.enable()
        with pytest.raises(ValueError):
            with obs.span("boom"):
                raise ValueError("nope")
        root = TRACER.finished_roots()[0]
        assert root.attrs["error"] == "ValueError"
        assert root.end >= root.start

    def test_attrs_set_is_chainable_and_renders(self):
        TRACER.enable()
        with obs.span("named") as span:
            span.set(a=1).set(b="two")
        text = TRACER.finished_roots()[0].render()
        assert "named" in text
        assert "a=1" in text and "b=two" in text

    def test_span_ids_are_unique(self):
        TRACER.enable()
        with obs.span("a"):
            with obs.span("b"):
                pass
        ids = [s.span_id for s in TRACER.finished_roots()[0].walk()]
        assert len(ids) == len(set(ids))
        assert all(i > 0 for i in ids)


class TestDisabledPath:
    def test_disabled_span_is_the_shared_noop(self):
        assert obs.span("anything", key="value") is NOOP_SPAN
        assert obs.add_span("x", 0.0, 1.0) is NOOP_SPAN

    def test_noop_span_supports_the_full_surface(self):
        with obs.span("x") as span:
            span.set(a=1)
        assert span is NOOP_SPAN
        assert list(span.walk()) == []
        assert span.render() == ""
        assert span.duration == 0.0

    def test_nothing_recorded_while_disabled(self):
        with obs.span("invisible"):
            pass
        assert TRACER.finished_roots() == []

    def test_tracing_reflects_enablement(self):
        assert obs.tracing() is False
        TRACER.enable()
        assert obs.tracing() is True


class TestForcing:
    def test_forced_true_enables_for_the_thread(self):
        with TRACER.forced(True):
            assert obs.tracing() is True
            with obs.span("forced"):
                pass
        assert obs.tracing() is False
        assert [r.name for r in TRACER.finished_roots()] == ["forced"]

    def test_forced_false_suppresses_enabled_tracing(self):
        TRACER.enable()
        with TRACER.forced(False):
            assert obs.tracing() is False
            with obs.span("hidden"):
                pass
        assert TRACER.finished_roots() == []

    def test_forced_none_is_a_no_op(self):
        TRACER.enable()
        with TRACER.forced(None):
            assert obs.tracing() is True
        TRACER.disable()
        with TRACER.forced(None):
            assert obs.tracing() is False

    def test_forced_restores_previous_override_on_exit(self):
        with TRACER.forced(True):
            with TRACER.forced(False):
                assert obs.tracing() is False
            assert obs.tracing() is True
        assert obs.tracing() is False


class TestThreads:
    def test_threads_build_independent_trees(self):
        TRACER.enable()
        barrier = threading.Barrier(2)

        def work(tag):
            with obs.span(f"root_{tag}"):
                barrier.wait(timeout=5)
                with obs.span(f"child_{tag}"):
                    pass

        threads = [
            threading.Thread(target=work, args=(t,)) for t in ("a", "b")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        roots = TRACER.finished_roots()
        assert sorted(r.name for r in roots) == ["root_a", "root_b"]
        for root in roots:
            assert len(root.children) == 1
            assert root.children[0].name == f"child_{root.name[-1]}"
            # Attribution: every span carries its recording thread's id.
            assert root.tid == root.children[0].tid
        assert roots[0].tid != roots[1].tid

    def test_forced_override_is_thread_local(self):
        TRACER.enable()
        seen = {}

        def work():
            seen["inner"] = obs.tracing()

        with TRACER.forced(False):
            thread = threading.Thread(target=work)
            thread.start()
            thread.join()
            seen["outer"] = obs.tracing()
        assert seen == {"inner": True, "outer": False}


class TestSummaryAndBounds:
    def test_span_summary_aggregates_by_name(self):
        TRACER.enable()
        for _ in range(3):
            with obs.span("repeat"):
                pass
        summary = TRACER.span_summary()
        assert summary["repeat"]["count"] == 3
        assert summary["repeat"]["seconds"] >= 0.0

    def test_root_buffer_is_bounded(self):
        TRACER.enable()
        from repro.obs.core import MAX_ROOTS

        for index in range(MAX_ROOTS + 10):
            with obs.span(f"s{index}"):
                pass
        roots = TRACER.finished_roots()
        assert len(roots) == MAX_ROOTS
        assert roots[-1].name == f"s{MAX_ROOTS + 9}"

    def test_clear_drops_recorded_trees(self):
        TRACER.enable()
        with obs.span("gone"):
            pass
        TRACER.clear()
        assert TRACER.finished_roots() == []
        assert TRACER.span_summary() == {}

    def test_direct_span_object_usable_without_tracer(self):
        span = Span("manual", "cat", {"k": "v"})
        assert span.duration == 0.0
        assert "manual" in repr(span)
