"""Exporters: Chrome trace schema, Prometheus round-trip, JSONL, atomicity."""

import json

import pytest

import repro.obs as obs
from repro._prof import PROF
from repro.obs import (
    METRICS,
    TRACER,
    chrome_trace,
    jsonl_events,
    parse_prometheus_text,
    prometheus_text,
    validate_chrome_trace,
    write_all,
)


@pytest.fixture(autouse=True)
def clean_telemetry():
    obs.reset_all()
    TRACER.disable()
    yield
    obs.reset_all()
    TRACER.disable()


def _record_tree():
    import time

    TRACER.enable()
    with obs.span("convert", category="convert", dst="CSR"):
        with obs.span("synthesize", category="synthesis"):
            mark = time.perf_counter()
            obs.add_span(
                "synthesis.optimize", mark, mark + 0.001, eliminated=2
            )
        with obs.span("execute", category="runtime", nnz=5):
            pass
    TRACER.disable()


class TestChromeTrace:
    def test_trace_passes_its_own_schema_check(self):
        _record_tree()
        trace = chrome_trace()
        assert validate_chrome_trace(trace) == []
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 4

    def test_events_are_complete_events_with_relative_timestamps(self):
        _record_tree()
        for event in chrome_trace()["traceEvents"]:
            if event["ph"] == "M":
                continue
            assert event["ph"] == "X"
            assert event["ts"] >= 0
            assert event["dur"] >= 0
            assert isinstance(event["args"], dict)

    def test_thread_name_metadata_precedes_span_events(self):
        _record_tree()
        events = chrome_trace()["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        assert metadata, "expected thread_name metadata events"
        assert all(e["name"] == "thread_name" for e in metadata)
        assert all(isinstance(e["args"]["name"], str) for e in metadata)
        # All metadata events come before the first complete event.
        first_span = next(i for i, e in enumerate(events) if e["ph"] == "X")
        assert all(e["ph"] == "M" for e in events[:first_span])

    def test_round_trips_through_json(self):
        _record_tree()
        text = json.dumps(chrome_trace())
        assert validate_chrome_trace(json.loads(text)) == []

    def test_validator_reports_problems(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": "nope"}) != []
        bad_event = {"name": "", "ph": "B", "ts": -1, "dur": "x", "pid": "p"}
        problems = validate_chrome_trace({"traceEvents": [bad_event]})
        assert len(problems) >= 4


class TestJsonl:
    def test_events_reference_their_parents(self):
        _record_tree()
        events = list(jsonl_events())
        by_name = {e["name"]: e for e in events}
        root_id = by_name["convert"]["id"]
        assert by_name["convert"]["parent"] == 0
        assert by_name["synthesize"]["parent"] == root_id
        assert by_name["execute"]["parent"] == root_id
        assert (
            by_name["synthesis.optimize"]["parent"]
            == by_name["synthesize"]["id"]
        )
        assert by_name["synthesis.optimize"]["attrs"] == {"eliminated": 2}

    def test_every_event_is_json_serializable(self):
        _record_tree()
        for event in jsonl_events():
            json.dumps(event)


class TestPrometheus:
    def test_text_parses_under_the_strict_parser(self):
        PROF.incr("cache.memo.hit", 3)
        with PROF.timer("synthesis.total"):
            pass
        METRICS.counter("repro_conversions", "done").inc(src="COO", dst="CSR")
        METRICS.histogram("repro_conversion_seconds").observe(0.002)
        _record_tree()
        text = prometheus_text()
        samples = parse_prometheus_text(text)
        assert samples[("repro_cache_memo_hit_total", ())] == 3
        assert (
            samples[
                (
                    "repro_conversions",
                    (("dst", "CSR"), ("src", "COO")),
                )
            ]
            == 1
        )
        assert ("repro_synthesis_total_seconds_total", ()) in samples
        assert ("repro_synthesis_total_calls_total", ()) in samples
        # histogram series: +Inf bucket, sum, count
        assert (
            samples[("repro_conversion_seconds_bucket", (("le", "+Inf"),))]
            == 1
        )
        assert ("repro_conversion_seconds_count", ()) in samples
        # span aggregates
        assert samples[("repro_span_count_total", (("span", "convert"),))] == 1

    def test_label_values_are_escaped(self):
        METRICS.counter("repro_escape_probe").inc(
            label='quote " backslash \\ newline \n end'
        )
        samples = parse_prometheus_text(prometheus_text())
        keys = [k for k in samples if k[0] == "repro_escape_probe"]
        assert len(keys) == 1

    def test_parser_rejects_garbage(self):
        with pytest.raises(ValueError, match="line 1"):
            parse_prometheus_text("this is not prometheus\n")

    def test_exemplars_round_trip(self):
        from repro.obs import parse_prometheus_exemplars

        hist = METRICS.histogram(
            "repro_exemplar_probe_seconds", "latency", buckets=(0.01, 1.0)
        )
        hist.observe(0.005, exemplar="aaaa1111", endpoint="/convert")
        hist.observe(5.0, exemplar="bbbb2222", endpoint="/convert")
        text = prometheus_text()
        # The strict parser still accepts the exemplar-suffixed lines.
        parse_prometheus_text(text)
        exemplars = parse_prometheus_exemplars(text)
        by_le = {
            dict(labels)["le"]: ex
            for (name, labels), ex in exemplars.items()
            if name == "repro_exemplar_probe_seconds_bucket"
        }
        assert by_le["0.01"]["labels"]["trace_id"] == "aaaa1111"
        assert by_le["0.01"]["value"] == 0.005
        assert by_le["+Inf"]["labels"]["trace_id"] == "bbbb2222"
        assert by_le["+Inf"]["ts"] is not None


class TestWriteAll:
    def test_writes_all_four_artifacts(self, tmp_path):
        PROF.incr("cache.miss")
        _record_tree()
        paths = write_all(tmp_path)
        assert sorted(paths) == [
            "chrome_trace",
            "events",
            "prometheus",
            "stats",
        ]
        trace = json.loads((tmp_path / "trace.json").read_text())
        assert validate_chrome_trace(trace) == []
        lines = (tmp_path / "events.jsonl").read_text().splitlines()
        assert len(lines) == 4
        for line in lines:
            json.loads(line)
        parse_prometheus_text((tmp_path / "metrics.prom").read_text())
        stats = json.loads((tmp_path / "stats.json").read_text())
        assert stats["prof"]["counters"]["cache.miss"] == 1

    def test_no_tmp_droppings_left_behind(self, tmp_path):
        _record_tree()
        write_all(tmp_path)
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []
