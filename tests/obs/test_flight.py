"""The flight recorder: tail sampling, bounded eviction, lookup."""

import pytest

import repro.obs as obs
from repro.obs import FlightRecorder, RequestRecord


@pytest.fixture(autouse=True)
def clean_metrics():
    obs.reset_all()
    yield
    obs.reset_all()


def _rec(trace_id, status=200, seconds=0.001):
    return RequestRecord(
        trace_id, status=status, seconds=seconds, src="COO", dst="CSR"
    )


class TestClassification:
    def test_shed_error_slow_and_fast(self):
        recorder = FlightRecorder(slow_seconds=0.5)
        assert recorder.classify(_rec("a", status=503)) == "shed"
        assert recorder.classify(_rec("b", status=400)) == "error"
        assert recorder.classify(_rec("c", seconds=0.75)) == "slow"
        assert recorder.classify(_rec("d")) == ""


class TestTailSampling:
    def test_fresh_fast_traffic_cannot_evict_slow_or_errored(self):
        recorder = FlightRecorder(capacity=4, retain=16, slow_seconds=0.5)
        slow = recorder.record(_rec("slow-1", seconds=0.9))
        errored = recorder.record(_rec("err-1", status=500))
        shed = recorder.record(_rec("shed-1", status=503))
        for index in range(32):
            recorder.record(_rec(f"fast-{index}"))
        # The recent ring has long cycled past the interesting three...
        recent_ids = {r.trace_id for r in recorder.recent()}
        assert recent_ids.isdisjoint({"slow-1", "err-1", "shed-1"})
        # ...yet they are still retrievable, with their classification.
        assert recorder.get("slow-1") is slow
        assert recorder.get("slow-1").reason == "slow"
        assert recorder.get("err-1") is errored
        assert recorder.get("shed-1") is shed
        # Fast requests live only as long as the ring does.
        assert recorder.get("fast-0") is None
        assert recorder.get("fast-31") is not None

    def test_retention_is_bounded_oldest_first(self):
        recorder = FlightRecorder(capacity=2, retain=4)
        for index in range(10):
            recorder.record(_rec(f"err-{index}", status=500))
        assert recorder.get("err-0") is None
        assert recorder.get("err-9") is not None
        assert recorder.stats()["retained"] == 4

    def test_recent_and_slowlog_are_newest_first_with_limit(self):
        recorder = FlightRecorder(capacity=8, retain=8, slow_seconds=0.5)
        for index in range(5):
            recorder.record(_rec(f"r-{index}", seconds=0.9))
        assert [r.trace_id for r in recorder.recent(2)] == ["r-4", "r-3"]
        assert [r.trace_id for r in recorder.slowlog(2)] == ["r-4", "r-3"]

    def test_admissions_are_counted_by_reason(self):
        recorder = FlightRecorder(slow_seconds=0.5)
        recorder.record(_rec("ok-1"))
        recorder.record(_rec("bad-1", status=500))
        counter = obs.METRICS.counter("repro_flight_records")
        assert counter.value(reason="ok") == 1
        assert counter.value(reason="error") == 1

    def test_clear_empties_both_stores(self):
        recorder = FlightRecorder()
        recorder.record(_rec("x", status=500))
        recorder.clear()
        assert recorder.get("x") is None
        stats = recorder.stats()
        assert stats["recent"] == 0 and stats["retained"] == 0


class TestRecordSummary:
    def test_summary_row_shape(self):
        record = _rec("abc", status=200, seconds=0.002)
        record.backend = "numpy"
        record.cache_outcome = "hit"
        FlightRecorder().record(record)
        row = record.summary()
        assert row["trace_id"] == "abc"
        assert row["pair"] == "COO->CSR"
        assert row["backend"] == "numpy"
        assert row["cache"] == "hit"
        assert row["seconds"] == 0.002
        assert row["traced"] is False
        assert row["reason"] == ""
