"""The per-statement source instrumenter: chunking, hooks, fallbacks."""

import time

from repro.obs.instrument import instrument_source, split_chunks

SAMPLE = """\
def coo_to_csr(row1, col1, NR, NC, NNZ, Asrc):
    col2 = [0] * (NNZ)
    rowptr = [0] * (NR + 1)
    for n in range(0, NNZ):
        rowptr[row1[n] + 1] += 1
        col2[n] = col1[n]
    for x in range(1, NR + 1):
        rowptr[x] += rowptr[x - 1]
    return {'rowptr': rowptr, 'col2': col2}
"""


class TestSplitChunks:
    def test_compound_statements_own_their_chunk(self):
        body = SAMPLE.splitlines()[1:]
        chunks = split_chunks(body, "    ")
        assert chunks is not None
        heads = [chunk[0].strip() for chunk in chunks]
        assert heads == [
            "col2 = [0] * (NNZ)",
            "for n in range(0, NNZ):",
            "for x in range(1, NR + 1):",
            "return {'rowptr': rowptr, 'col2': col2}",
        ]
        # consecutive simple statements coalesce into the first chunk
        assert "rowptr = [0] * (NR + 1)" in chunks[0][1]

    def test_comments_start_a_new_chunk(self):
        # The emitters use comments as nest markers, so a comment opens a
        # fresh chunk and the following statements belong to it.
        body = [
            "    a = 1",
            "    b = 2",
            "    # vectorized: loop nest over n",
            "    c = 3",
        ]
        chunks = split_chunks(body, "    ")
        assert [c[0].strip() for c in chunks] == [
            "a = 1",
            "# vectorized: loop nest over n",
        ]
        assert chunks[0] == ["    a = 1", "    b = 2"]
        assert chunks[1][-1] == "    c = 3"

    def test_unexpected_shape_returns_none(self):
        assert split_chunks(["        orphan_continuation"], "    ") is None
        assert split_chunks(["no_indent = 1"], "    ") is None


class TestInstrumentSource:
    def test_injects_hooks_per_timed_chunk(self):
        result = instrument_source(SAMPLE, "coo_to_csr")
        assert result is not None
        source, labels = result
        assert labels == [
            "col2 = [0] * (NNZ)",
            "for n in range(0, NNZ):",
            "for x in range(1, NR + 1):",
        ]
        assert source.count("__OBS_STMT(") == len(labels)
        # the return statement is never timed
        assert "__OBS_STMT(3" not in source

    def test_instrumented_source_runs_and_reports(self):
        source, labels = instrument_source(SAMPLE, "coo_to_csr")
        calls = []

        def hook(index, label, start, end):
            calls.append((index, label))
            assert end >= start

        env = {"__OBS_STMT": hook, "__OBS_CLOCK": time.perf_counter}
        exec(compile(source, "<test>", "exec"), env)
        out = env["coo_to_csr"]([0, 0, 1], [0, 1, 0], 2, 2, 3, [1.0, 2.0, 3.0])
        assert out["rowptr"] == [0, 2, 3]
        assert out["col2"] == [0, 1, 0]
        assert [c[0] for c in calls] == [0, 1, 2]
        assert [c[1] for c in calls] == labels

    def test_instrumentation_preserves_semantics(self):
        plain_env: dict = {}
        exec(compile(SAMPLE, "<plain>", "exec"), plain_env)
        source, _ = instrument_source(SAMPLE, "coo_to_csr")
        inst_env = {
            "__OBS_STMT": lambda *a: None,
            "__OBS_CLOCK": time.perf_counter,
        }
        exec(compile(source, "<inst>", "exec"), inst_env)
        args = ([0, 1, 1], [2, 0, 1], 2, 3, 3, [1.0, 2.0, 3.0])
        assert plain_env["coo_to_csr"](*args) == inst_env["coo_to_csr"](*args)

    def test_unknown_function_name_returns_none(self):
        assert instrument_source(SAMPLE, "not_there") is None

    def test_empty_body_returns_none(self):
        assert instrument_source("def f():\n", "f") is None

    def test_real_generated_source_instruments_on_both_backends(self):
        from repro.formats import get_format
        from repro.synthesis import synthesize

        for backend in ("python", "numpy"):
            conv = synthesize(
                get_format("SCOO"), get_format("CSR"), backend=backend
            )
            result = instrument_source(conv.source, conv.name)
            assert result is not None, backend
            source, labels = result
            assert labels, backend
            compile(source, "<generated>", "exec")
