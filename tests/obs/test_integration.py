"""End-to-end tracing through convert / planner / fuzzer, and metric pins."""

import pytest

import repro
import repro.obs as obs
from repro.obs import TRACER


@pytest.fixture(autouse=True)
def clean_tracer():
    TRACER.disable()
    TRACER.clear()
    yield
    TRACER.disable()
    TRACER.clear()


def _sample_coo():
    return repro.COOMatrix.from_dense(
        [
            [0.0, 1.0, 2.0],
            [3.0, 0.0, 0.0],
            [0.0, 4.0, 5.0],
        ]
    )


def _find(root, name):
    return [s for s in root.walk() if s.name == name]


@pytest.fixture()
def fresh_synthesis(monkeypatch):
    """Force a real synthesis: no memo entry, no disk-cache entry."""
    monkeypatch.setenv("REPRO_CACHE_DISABLE", "1")
    repro.synthesis.cache.clear_memo()
    yield
    repro.synthesis.cache.clear_memo()


class TestTracedConvert:
    def test_trace_knob_records_the_acceptance_span_tree(
        self, fresh_synthesis
    ):
        # The acceptance shape: the conversion trace covers synthesis
        # phases (case match, compose, optimize, lower) and runtime
        # execution with per-statement children.
        csr = repro.convert(_sample_coo(), "CSR", trace=True)
        assert csr.rowptr == [0, 2, 3, 5]
        roots = TRACER.finished_roots()
        assert [r.name for r in roots] == ["convert"]
        root = roots[0]
        for phase in (
            "synthesize",
            "synthesis.compose",
            "synthesis.case_match",
            "synthesis.build",
            "synthesis.optimize",
            "synthesis.lower",
            "execute",
            "validate.input",
            "pack_outputs",
        ):
            assert _find(root, phase), f"missing span {phase}"
        execute = _find(root, "execute")[0]
        stmt_children = [
            c for c in execute.children if c.category == "execute.stmt"
        ]
        assert stmt_children, "execute span has no per-statement children"
        assert all("index" in c.attrs for c in stmt_children)
        assert execute.attrs["nnz"] == 5
        assert execute.attrs["conversion"] == "scoo_to_csr"

    def test_optimize_span_pins_statement_elimination(
        self, fresh_synthesis
    ):
        # SCOO→CSR is the paper's flagship example: the optimizer removes
        # the two self-copy statements (9 → 7).  COO→CSR (the sorting
        # descriptor) keeps all 9.  These counts are part of the repro's
        # contract; a synthesis change that shifts them must be deliberate.
        with TRACER.forced(True):
            repro.get_conversion("SCOO", "CSR", optimize=True)
        optimize = None
        for root in TRACER.finished_roots():
            found = _find(root, "synthesis.optimize")
            if found:
                optimize = found[0]
        assert optimize is not None
        assert optimize.attrs == {
            "stmts_before": 9,
            "stmts_after": 7,
            "eliminated": 2,
        }

    def test_coo_to_csr_optimize_eliminates_nothing(self, fresh_synthesis):
        with TRACER.forced(True):
            repro.get_conversion("COO", "CSR", optimize=True)
        optimize = None
        for root in TRACER.finished_roots():
            found = _find(root, "synthesis.optimize")
            if found:
                optimize = found[0]
        assert optimize is not None
        assert optimize.attrs["stmts_before"] == 9
        assert optimize.attrs["eliminated"] == 0

    def test_trace_false_suppresses_env_enabled_tracing(self):
        TRACER.enable()
        repro.convert(_sample_coo(), "CSR", trace=False)
        assert TRACER.finished_roots() == []

    def test_untraced_convert_records_nothing(self):
        repro.convert(_sample_coo(), "CSR")
        assert TRACER.finished_roots() == []

    def test_cached_conversion_trace_marks_cache_outcome(self):
        repro.convert(_sample_coo(), "CSR", trace=True)
        TRACER.clear()
        repro.convert(_sample_coo(), "CSR", trace=True)
        root = TRACER.finished_roots()[0]
        lookup = _find(root, "cache.lookup")[0]
        assert lookup.attrs["outcome"] == "memo_hit"
        # cached runs skip synthesis entirely but still trace execution
        assert not _find(root, "synthesize")
        assert _find(root, "execute")

    def test_parse_span_recorded_when_a_format_is_built(self):
        from repro.formats import library

        original = library._BUILT.pop("ELL", None)
        try:
            with TRACER.forced(True), obs.span("harness"):
                repro.get_format("ELL")
            root = TRACER.finished_roots()[0]
            parse = _find(root, "parse.format")
            assert parse and parse[0].attrs == {"format": "ELL"}
        finally:
            if original is not None:
                library._BUILT["ELL"] = original

    def test_numpy_backend_traces_with_statement_children(
        self, fresh_synthesis
    ):
        repro.convert(_sample_coo(), "CSR", backend="numpy", trace=True)
        root = TRACER.finished_roots()[0]
        execute = _find(root, "execute")[0]
        assert execute.attrs["backend"] == "numpy"
        assert any(
            c.category == "execute.stmt" for c in execute.children
        )


class TestTracedPlanner:
    def test_plan_execute_records_step_spans(self):
        from repro.planner import convert_via_plan

        result = convert_via_plan(_sample_coo(), "DIA", trace=True)
        assert result.format_name == "DIA"
        roots = TRACER.finished_roots()
        assert [r.name for r in roots] == ["plan.execute"]
        root = roots[0]
        steps = _find(root, "plan.step")
        assert steps
        assert root.attrs["steps"] == len(steps)
        assert "->" in root.attrs["chain"]
        assert steps[-1].attrs["dst"] == "DIA"


class TestTracedFuzz:
    def test_fuzz_trace_attributes_combos(self):
        from repro.verify.fuzz import fuzz

        report = fuzz(
            cases=4,
            seed=3,
            backends=("python",),
            optimize_levels=(True,),
            ranks=(2,),
            trace=True,
        )
        assert report.ok
        assert report.combo_timings
        for slot in report.combo_timings.values():
            assert slot["cases"] >= 1
            assert slot["seconds"] > 0
        case_spans = [
            r for r in TRACER.finished_roots() if r.name == "fuzz.case"
        ]
        assert len(case_spans) == 4
        assert all(s.attrs["outcome"] == "ok" for s in case_spans)

    def test_untraced_fuzz_report_has_no_timings(self):
        from repro.verify.fuzz import fuzz

        report = fuzz(
            cases=2,
            seed=3,
            backends=("python",),
            optimize_levels=(True,),
            ranks=(2,),
        )
        assert report.combo_timings == {}


class TestStatsCli:
    def test_stats_and_cache_stats_agree(self, capsys):
        import json

        from repro.__main__ import main

        repro.convert(_sample_coo(), "CSR")
        assert main(["stats", "--format", "json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert main(["cache", "stats", "--json"]) == 0
        cache = json.loads(capsys.readouterr().out)
        assert stats["cache"]["counters"] == cache["counters"]
        assert stats["cache"]["entries"] == cache["entries"]

    def test_stats_prom_output_parses(self, capsys):
        from repro.__main__ import main

        assert main(["stats", "--format", "prom"]) == 0
        text = capsys.readouterr().out
        obs.parse_prometheus_text(text)

    def test_trace_command_emits_valid_artifacts(self, tmp_path, capsys):
        import json

        from repro.__main__ import main

        status = main(
            [
                "trace",
                "COO",
                "CSR",
                "--nnz",
                "32",
                "--rows",
                "16",
                "--cols",
                "16",
                "--out",
                str(tmp_path),
            ]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "convert" in out and "execute" in out
        trace = json.loads((tmp_path / "trace.json").read_text())
        assert obs.validate_chrome_trace(trace) == []
        names = {e["name"] for e in trace["traceEvents"]}
        assert {"convert", "execute"} <= names
