"""Typed metrics and the unified snapshot's one-source-of-truth contract."""

import pytest

import repro.obs as obs
from repro._prof import PROF
from repro.obs import METRICS, MetricsRegistry, unified_snapshot
from repro.obs.metrics import Counter, Gauge, Histogram


@pytest.fixture(autouse=True)
def clean_metrics():
    obs.reset_all()
    yield
    obs.reset_all()


class TestInstruments:
    def test_counter_accumulates_per_label_set(self):
        counter = Counter("conversions")
        counter.inc()
        counter.inc(2, backend="numpy")
        counter.inc(backend="numpy")
        assert counter.value() == 1
        assert counter.value(backend="numpy") == 3
        samples = {
            tuple(sorted(s["labels"].items())): s["value"]
            for s in counter.snapshot()["samples"]
        }
        assert samples[()] == 1
        assert samples[(("backend", "numpy"),)] == 3

    def test_gauge_sets_not_accumulates(self):
        gauge = Gauge("entries")
        gauge.set(5, table="memo")
        gauge.set(2, table="memo")
        assert gauge.value(table="memo") == 2

    def test_histogram_buckets_are_cumulative(self):
        hist = Histogram("latency", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 5.0):
            hist.observe(value)
        sample = hist.snapshot()["samples"][0]["value"]
        assert sample["count"] == 4
        assert sample["sum"] == pytest.approx(5.555)
        assert sample["min"] == pytest.approx(0.005)
        assert sample["max"] == pytest.approx(5.0)
        assert sample["buckets"] == [1, 2, 3]  # cumulative per bound

    def test_registry_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("hits", "help text")
        b = registry.counter("hits")
        assert a is b

    def test_registry_rejects_kind_conflicts(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("thing")

    def test_reset_clears_series_but_keeps_registration(self):
        registry = MetricsRegistry()
        counter = registry.counter("n")
        counter.inc(7)
        registry.reset()
        assert counter.value() == 0
        assert registry.counter("n") is counter


class TestUnifiedSnapshot:
    def test_sections_present(self):
        snapshot = unified_snapshot()
        for key in ("prof", "metrics", "spans", "ir_memo_tables", "cache"):
            assert key in snapshot, key

    def test_cache_section_mirrors_prof_counters(self):
        """`repro stats` and `repro cache stats` must report the same
        numbers: the cache section's counters are the prof registry's
        ``cache.*`` subset by construction."""
        PROF.incr("cache.memo.hit", 4)
        PROF.incr("cache.miss", 1)
        snapshot = unified_snapshot()
        expected = {
            k: v
            for k, v in snapshot["prof"]["counters"].items()
            if k.startswith("cache.")
        }
        assert snapshot["cache"]["counters"] == expected

        from repro.synthesis.cache import cache_stats

        assert cache_stats()["counters"] == expected

    def test_stats_file_payload_keeps_legacy_counters_mirror(self):
        """The REPRO_CACHE_STATS_FILE dump is the unified snapshot plus a
        top-level ``counters`` mirror (CI's cache job asserts on it)."""
        PROF.incr("cache.disk.write", 2)
        from repro.synthesis.cache import stats_file_payload

        payload = stats_file_payload()
        assert payload["counters"]["cache.disk.write"] == 2
        assert payload["counters"] == payload["cache"]["counters"]
        assert "prof" in payload and "metrics" in payload

    def test_typed_metrics_land_in_snapshot(self):
        METRICS.counter("repro_test_metric", "docs").inc(3, kind="x")
        snapshot = unified_snapshot(include_cache=False)
        metric = snapshot["metrics"]["repro_test_metric"]
        assert metric["kind"] == "counter"
        assert metric["samples"][0]["value"] == 3
        assert "cache" not in snapshot

    def test_reset_all_zeroes_every_source(self):
        PROF.incr("cache.miss")
        METRICS.counter("repro_reset_probe").inc()
        obs.TRACER.enable()
        with obs.span("probe"):
            pass
        obs.reset_all()
        obs.TRACER.disable()
        snapshot = unified_snapshot(include_cache=False)
        assert snapshot["prof"]["counters"] == {}
        assert snapshot["spans"] == {}
        probe = snapshot["metrics"].get("repro_reset_probe")
        assert probe is None or probe["samples"] == []


class TestGateMetrics:
    def test_gate_rejections_counted_by_error_subclass(self):
        from repro.errors import ValidationError
        from repro.runtime import COOMatrix
        from repro.verify import gate

        bad = COOMatrix(
            nrows=2, ncols=2, row=[0, 5], col=[0, 1], val=[1.0, 2.0]
        )
        with pytest.raises(ValidationError) as excinfo:
            gate.check_input(bad, level="inputs")
        rejections = METRICS.counter("repro_gate_rejections")
        assert (
            rejections.value(
                error=type(excinfo.value).__name__, where="input"
            )
            == 1
        )
        checks = METRICS.counter("repro_gate_checks")
        assert checks.value(where="input") == 1

    def test_unsorted_rejection_uses_its_own_subclass(self):
        from repro.errors import UnsortedInputError
        from repro.runtime import COOMatrix
        from repro.verify import gate

        unsorted = COOMatrix(
            nrows=3, ncols=3, row=[2, 0], col=[0, 1], val=[1.0, 2.0]
        )
        with pytest.raises(UnsortedInputError):
            gate.check_input(unsorted, level="inputs", assume_sorted=True)
        rejections = METRICS.counter("repro_gate_rejections")
        assert (
            rejections.value(error="UnsortedInputError", where="input") == 1
        )
