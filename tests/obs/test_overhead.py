"""The disabled-path cost contract: tracing off must be ~free.

The instrumented hot path (``convert`` → cache lookup → execute) crosses
roughly a dozen span sites.  With tracing disabled each site is one flag
check returning the shared no-op span, so the total per-conversion cost
of the observability layer must stay under 1% of a real conversion's
wall time.  This test measures both sides and pins the ratio, with a
generous conversion size so scheduler noise cannot flip it.
"""

import time

import pytest

import repro
import repro.obs as obs
from repro.datagen import random_uniform
from repro.obs import NOOP_SPAN, TRACER

#: Upper bound on span sites crossed by one convert() call (actual ~12:
#: convert, validate x2, parse x2, cache.lookup, synthesize + 5 phases,
#: compile, execute, pack).  Overstated on purpose.
SPAN_SITES_PER_CONVERSION = 32


@pytest.fixture(autouse=True)
def tracing_off():
    TRACER.disable()
    TRACER.clear()
    yield
    TRACER.clear()


def _per_site_cost(iterations: int = 20_000) -> float:
    """Median-of-5 per-call cost of a disabled span site, in seconds."""
    best = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        for _ in range(iterations):
            with obs.span("probe", category="test", key="value"):
                pass
        best = min(best, (time.perf_counter() - start) / iterations)
    return best


def test_disabled_span_returns_shared_noop_without_recording():
    assert obs.span("x") is NOOP_SPAN
    assert TRACER.finished_roots() == []


def test_disabled_overhead_is_under_one_percent_of_a_conversion():
    matrix = random_uniform(128, 128, 4096, seed=7)
    # Warm synthesis + compile so the timed calls measure execution only.
    repro.convert(matrix, "CSR")

    runs = []
    for _ in range(3):
        start = time.perf_counter()
        repro.convert(matrix, "CSR")
        runs.append(time.perf_counter() - start)
    conversion_s = min(runs)

    site_cost = _per_site_cost()
    budget = 0.01 * conversion_s
    spent = site_cost * SPAN_SITES_PER_CONVERSION
    assert spent < budget, (
        f"disabled tracing costs {spent * 1e6:.1f}us per conversion "
        f"({site_cost * 1e9:.0f}ns/site x {SPAN_SITES_PER_CONVERSION}), "
        f"over 1% of the {conversion_s * 1e3:.2f}ms conversion"
    )


def test_enabled_tracing_still_cheap_relative_to_synthesis():
    """Tracing on: span bookkeeping stays well under synthesis cost.

    This is a sanity bound (10x looser than the disabled-path pin), not a
    benchmark — BENCH_pr4.json records the measured enabled overhead.
    """
    TRACER.enable()
    start = time.perf_counter()
    for _ in range(1_000):
        with obs.span("outer", category="test"):
            with obs.span("inner"):
                pass
    per_tree = (time.perf_counter() - start) / 1_000
    TRACER.disable()
    TRACER.clear()
    # A two-span tree must build in well under 100us (typical: ~2us).
    assert per_tree < 100e-6
