"""Cache keys must cover the resolved pass pipeline.

Disabling a pass changes the generated inspector, so a request with
``disabled_passes`` must never be served an inspector cached for the
full pipeline (or vice versa) — from the memo or from disk.
"""

import pytest

from repro.formats import get_format
from repro.synthesis import clear_memo, synthesize_cached


@pytest.fixture
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_CACHE_DISABLE", raising=False)
    clear_memo()
    yield tmp_path / "cache"
    clear_memo()


class TestPassConfigKeys:
    def test_disabled_pass_gets_distinct_memo_entry(self, isolated_cache):
        src, dst = get_format("SCOO"), get_format("CSR")
        full = synthesize_cached(src, dst)
        partial = synthesize_cached(src, dst, disabled_passes=("fusion",))
        assert full is not partial
        assert full.source != partial.source
        # Same config again is the same object (memo hit), proving the
        # two configs key separately rather than evicting each other.
        assert synthesize_cached(src, dst) is full
        assert synthesize_cached(
            src, dst, disabled_passes=("fusion",)
        ) is partial

    def test_disabled_pass_gets_distinct_disk_entry(self, isolated_cache):
        src, dst = get_format("SCOO"), get_format("CSR")
        full = synthesize_cached(src, dst)
        partial = synthesize_cached(src, dst, disabled_passes=("dce",))
        entries = list(isolated_cache.rglob("*.json"))
        assert len(entries) == 2
        # A cold process (memo dropped) must reload each variant from its
        # own entry, not cross-serve the other pipeline's inspector.
        clear_memo()
        assert synthesize_cached(src, dst).source == full.source
        assert synthesize_cached(
            src, dst, disabled_passes=("dce",)
        ).source == partial.source

    def test_disable_order_is_normalized_into_one_key(self, isolated_cache):
        src, dst = get_format("SCOO"), get_format("CSR")
        a = synthesize_cached(src, dst, disabled_passes=("dce", "fusion"))
        b = synthesize_cached(src, dst, disabled_passes=("fusion", "dce"))
        # The fingerprint orders by canonical pass position, so the two
        # spellings resolve to the same pipeline and the same cache slot.
        assert a is b

    def test_unknown_disabled_pass_rejected_before_caching(
        self, isolated_cache
    ):
        src, dst = get_format("SCOO"), get_format("CSR")
        with pytest.raises(ValueError, match="unknown optimization pass"):
            synthesize_cached(src, dst, disabled_passes=("fusoin",))
        assert list(isolated_cache.rglob("*.json")) == []
