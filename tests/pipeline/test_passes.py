"""The PassManager: registration, canonical ordering, config resolution.

The load-bearing property is determinism: the pipeline a request resolves
to depends only on the registered passes and the request flags, never on
the order passes happened to be registered in.
"""

import pytest

from repro.formats import csr, scoo
from repro.pipeline import (
    BINARY_SEARCH,
    PASSES,
    Pass,
    PassConfig,
    PassContext,
    PassManager,
)
from repro.synthesis import synthesize


def _noop(_ctx):
    return 0


class TestRegistry:
    def test_standard_passes_registered(self):
        assert PASSES.names() == ("dedup", "dce", "fusion", "binary-search")

    def test_duplicate_registration_rejected(self):
        pm = PassManager()
        pm.register(Pass("x", "first", _noop))
        with pytest.raises(ValueError, match="already registered"):
            pm.register(Pass("x", "second", _noop))

    def test_replace_overrides(self):
        pm = PassManager()
        pm.register(Pass("x", "first", _noop))
        pm.register(Pass("x", "second", _noop), replace=True)
        assert pm.get("x").description == "second"

    def test_unregister_returns_pass(self):
        pm = PassManager()
        p = pm.register(Pass("x", "", _noop))
        assert pm.unregister("x") is p
        assert pm.unregister("x") is None
        assert pm.names() == ()

    def test_unknown_pass_raises(self):
        with pytest.raises(ValueError, match="unknown optimization pass"):
            PassManager().get("nope")


class TestCanonicalOrdering:
    def test_position_independent_of_registration_order(self):
        forward, reverse = PassManager(), PassManager()
        passes = [
            Pass("c", "", _noop, order=30),
            Pass("a", "", _noop, order=10),
            Pass("b", "", _noop, order=20),
        ]
        for p in passes:
            forward.register(p)
        for p in reversed(passes):
            reverse.register(p)
        assert forward.names() == reverse.names() == ("a", "b", "c")

    def test_name_breaks_order_ties(self):
        pm = PassManager()
        pm.register(Pass("zeta", "", _noop, order=10))
        pm.register(Pass("alpha", "", _noop, order=10))
        assert pm.names() == ("alpha", "zeta")

    def test_synthesis_invariant_under_reregistration(self):
        """Re-registering the standard passes in any order must produce a
        byte-identical inspector — the engine runs canonical positions,
        not registration order."""
        baseline = synthesize(scoo(), csr())
        saved = PASSES.passes()
        try:
            for p in saved:
                PASSES.unregister(p.name)
            for p in reversed(saved):
                PASSES.register(p)
            reordered = synthesize(scoo(), csr())
        finally:
            for p in saved:
                PASSES.unregister(p.name)
            for p in saved:
                PASSES.register(p)
        assert reordered.source == baseline.source
        assert reordered.notes == baseline.notes


class TestConfigResolution:
    def test_default_enables_non_opt_in(self):
        cfg = PASSES.config()
        assert cfg.enabled == ("dedup", "dce", "fusion")
        assert BINARY_SEARCH not in cfg

    def test_optimize_off_disables_everything(self):
        assert PASSES.config(optimize=False).enabled == ()

    def test_opt_in_requires_request(self):
        cfg = PASSES.config(requested=(BINARY_SEARCH,))
        assert cfg.enabled == ("dedup", "dce", "fusion", "binary-search")

    def test_requested_opt_in_survives_optimize_off(self):
        # binary_search=True with optimize=False still runs the rewrite:
        # the flag requests the pass explicitly.
        cfg = PASSES.config(optimize=False, requested=(BINARY_SEARCH,))
        assert cfg.enabled == ("binary-search",)

    def test_disabled_removes_pass(self):
        cfg = PASSES.config(disabled=("fusion",))
        assert cfg.enabled == ("dedup", "dce")

    def test_unknown_disabled_name_fails_loudly(self):
        with pytest.raises(ValueError, match="registered passes:"):
            PASSES.config(disabled=("fusoin",))

    def test_unknown_requested_name_fails_loudly(self):
        with pytest.raises(ValueError, match="unknown optimization pass"):
            PASSES.config(requested=("turbo",))


class TestFingerprint:
    def test_reflects_enabled_passes(self):
        full = PASSES.fingerprint(PASSES.config())
        partial = PASSES.fingerprint(PASSES.config(disabled=("fusion",)))
        assert full == "dedup,dce,fusion"
        assert partial == "dedup,dce"

    def test_empty_pipeline_has_sentinel(self):
        assert PASSES.fingerprint(PassConfig(enabled=())) == "none"


class _FakeComp:
    """Just enough Computation surface for PassManager.run's accounting."""

    def __init__(self):
        self.stmts = []


class TestRun:
    def test_results_report_statement_deltas(self):
        pm = PassManager()
        pm.register(Pass("touch", "", lambda _ctx: 3, order=1))
        ctx = PassContext(comp=_FakeComp(), returns=(), symtab=None)
        results = pm.run(ctx, pm.config())
        assert len(results) == 1
        assert results[0].name == "touch"
        assert results[0].changed == 3

    def test_disabled_pass_not_run(self):
        ran = []
        pm = PassManager()
        pm.register(Pass("a", "", lambda c: ran.append("a") or 0, order=1))
        pm.register(Pass("b", "", lambda c: ran.append("b") or 0, order=2))
        ctx = PassContext(comp=_FakeComp(), returns=(), symtab=None)
        pm.run(ctx, pm.config(disabled=("a",)))
        assert ran == ["b"]
