"""Shared fixtures: every planner test gets an isolated cost store."""

import pytest

from repro.planner.coststore import reset_default_store


@pytest.fixture(autouse=True)
def isolated_costs(tmp_path, monkeypatch):
    """Point the learned-cost store at a per-test directory."""
    monkeypatch.setenv("REPRO_COSTS_DIR", str(tmp_path / "costs"))
    monkeypatch.delenv("REPRO_COSTS_DISABLE", raising=False)
    monkeypatch.delenv("REPRO_COSTS_MAX", raising=False)
    reset_default_store()
    yield tmp_path / "costs"
    reset_default_store()
