"""Composed formats on the planner graph and in the auto-tuner.

DCSR and BCSC exist only as level compositions — these tests pin that
composed formats are first-class planner nodes (registrable Dijkstra
sources/destinations) and that registered parameterized families are
tunable with no tuner changes.
"""

import pytest

from repro.planner import PLANNABLE_2D, ConversionPlanner
from repro.planner.stats import matrix_stats
from repro.planner.tune import TUNABLE, TuneError, candidates_for, tune
from repro.runtime import BCSCMatrix, DCSRMatrix, dense_equal

DENSE = [
    [1.0, 0.0, 2.0, 0.0, 0.0],
    [0.0, 0.0, 0.0, 0.0, 7.0],
    [3.0, 4.0, 0.0, 5.0, 0.0],
    [0.0, 6.0, 0.0, 0.0, 0.0],
    [0.0, 0.0, 8.0, 0.0, 9.0],
]

EXTENDED = PLANNABLE_2D + ("DCSR", "BCSC")


class TestPlannerGraph:
    def test_composed_formats_register_as_nodes(self):
        planner = ConversionPlanner(formats=EXTENDED)
        assert "DCSR" in planner.format_names
        assert planner.plan("DCSR", "MCOO").steps
        assert planner.plan("CSR", "BCSC").steps

    def test_execute_from_dcsr(self):
        planner = ConversionPlanner(formats=EXTENDED)
        out = planner.execute(
            DCSRMatrix.from_dense(DENSE), "MCOO", validate="full"
        )
        assert dense_equal(out.to_dense(), DENSE)

    def test_execute_into_parameterized_bcsc(self):
        planner = ConversionPlanner(formats=EXTENDED)
        out = planner.execute(
            BCSCMatrix.from_dense(DENSE, 2), "BCSR3", validate="full"
        )
        assert dense_equal(out.to_dense(), DENSE)

    def test_source_only_composed_format_is_not_a_destination(self):
        from repro.synthesis import SynthesisError

        planner = ConversionPlanner(formats=EXTENDED)
        with pytest.raises(SynthesisError):
            planner.plan("CSR", "DCSR")


class TestTunerGeneralization:
    def test_bcsc_is_tunable(self):
        assert "BCSC" in TUNABLE

    def test_bcsc_candidates_enumerate_blocks(self):
        stats = matrix_stats(BCSCMatrix.from_dense(DENSE, 2))
        viable, rejected = candidates_for("BCSC", stats)
        assert [c.dst for c in viable] == ["BCSC", "BCSC3", "BCSC4",
                                           "BCSC5"]
        assert all("block exceeds" in r for r in rejected.values())

    def test_tune_picks_a_bcsc_block(self):
        result = tune(
            DCSRMatrix.from_dense(DENSE), "BCSC", measure=False
        )
        assert result.best.candidate.family == "BCSC"
        assert result.best.candidate.block in (2, 3, 4)

    def test_unregistered_family_still_rejected(self):
        stats = matrix_stats(BCSCMatrix.from_dense(DENSE, 2))
        with pytest.raises(TuneError):
            candidates_for("CSF", stats)
