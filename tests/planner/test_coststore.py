"""The learned-cost store: persistence, eviction, calibration, knobs."""

import json
import os

import pytest

from repro.planner.coststore import (
    CostStore,
    conversion_cost_key,
    costs_dir,
    costs_enabled,
    costs_root,
    default_cost_store,
    reset_default_store,
)


class TestRoundTrip:
    def test_record_then_lookup(self, tmp_path):
        store = CostStore(tmp_path / "c.json")
        store.record("conv", "bucket", 0.5, predicted=100.0, label="a->b")
        entry = store.lookup("conv", "bucket")
        assert entry["seconds"] == 0.5
        assert entry["predicted"] == 100.0
        assert entry["label"] == "a->b"
        assert entry["count"] == 1

    def test_miss_returns_none(self, tmp_path):
        store = CostStore(tmp_path / "c.json")
        assert store.lookup("conv", "bucket") is None

    def test_ewma_folds_measurements(self, tmp_path):
        store = CostStore(tmp_path / "c.json")
        store.record("conv", "bucket", 1.0)
        store.record("conv", "bucket", 0.0)
        entry = store.lookup("conv", "bucket")
        assert entry["count"] == 2
        assert 0.0 < entry["seconds"] < 1.0

    def test_persists_across_instances(self, tmp_path):
        path = tmp_path / "c.json"
        CostStore(path).record("conv", "bucket", 0.25)
        entry = CostStore(path).lookup("conv", "bucket")
        assert entry["seconds"] == 0.25

    def test_corrupt_file_treated_as_empty(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text("not json{{{")
        store = CostStore(path)
        assert store.lookup("conv", "bucket") is None
        store.record("conv", "bucket", 1.0)
        assert json.loads(path.read_text())["schema"] == 1


class TestEviction:
    def test_oldest_updated_evicted(self, tmp_path):
        store = CostStore(tmp_path / "c.json", max_entries=4)
        for n in range(6):
            store.record(f"conv{n}", "bucket", 0.1)
        assert len(store) == 4
        # The two earliest records are gone; the latest survive.
        assert store.lookup("conv0", "bucket") is None
        assert store.lookup("conv1", "bucket") is None
        assert store.lookup("conv5", "bucket") is not None

    def test_refreshed_entry_survives(self, tmp_path):
        store = CostStore(tmp_path / "c.json", max_entries=2)
        store.record("old", "bucket", 0.1)
        store.record("mid", "bucket", 0.1)
        store.record("old", "bucket", 0.2)  # refresh: now newer than mid
        store.record("new", "bucket", 0.1)
        assert store.lookup("mid", "bucket") is None
        assert store.lookup("old", "bucket") is not None


class TestCalibration:
    def test_none_when_empty(self, tmp_path):
        assert CostStore(tmp_path / "c.json").calibration() is None

    def test_median_ratio(self, tmp_path):
        store = CostStore(tmp_path / "c.json")
        store.record("a", "b", 1.0, predicted=10.0)   # ratio 0.1
        store.record("c", "b", 4.0, predicted=10.0)   # ratio 0.4
        store.record("d", "b", 90.0, predicted=10.0)  # ratio 9.0
        assert store.calibration() == pytest.approx(0.4)

    def test_entries_without_prediction_ignored(self, tmp_path):
        store = CostStore(tmp_path / "c.json")
        store.record("a", "b", 1.0)
        assert store.calibration() is None


class TestKnobs:
    def test_disable_switch(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_COSTS_DISABLE", "1")
        assert not costs_enabled()
        store = CostStore(tmp_path / "c.json")
        store.record("conv", "bucket", 1.0)
        assert store.lookup("conv", "bucket") is None
        assert not (tmp_path / "c.json").exists()

    def test_dir_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_COSTS_DIR", str(tmp_path / "elsewhere"))
        assert costs_root() == tmp_path / "elsewhere"
        # The store partition is versioned under the root.
        assert costs_dir().parent == tmp_path / "elsewhere"

    def test_max_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_COSTS_MAX", "2")
        store = CostStore(tmp_path / "c.json")
        for n in range(4):
            store.record(f"conv{n}", "bucket", 0.1)
        assert len(store) == 2

    def test_default_store_singleton_resets(self):
        first = default_cost_store()
        assert default_cost_store() is first
        reset_default_store()
        assert default_cost_store() is not first


class TestConversionKey:
    def test_keyed_by_generated_code(self):
        from repro import get_conversion

        a = get_conversion("SCOO", "CSR")
        b = get_conversion("SCOO", "CSC")
        assert conversion_cost_key(a) == conversion_cost_key(a)
        assert conversion_cost_key(a) != conversion_cost_key(b)

    def test_backend_distinguishes(self):
        from repro import get_conversion

        scalar = get_conversion("SCOO", "CSR", backend="python")
        vector = get_conversion("SCOO", "CSR", backend="numpy")
        assert conversion_cost_key(scalar) != conversion_cost_key(vector)


class TestMaintenance:
    def test_clear_and_stats(self, tmp_path):
        store = CostStore(tmp_path / "c.json")
        store.record("a", "b", 1.0, predicted=2.0)
        info = store.stats()
        assert info["entries"] == 1
        assert info["measurements"] == 1
        assert info["calibration"] == pytest.approx(0.5)
        assert store.clear() == 1
        assert len(store) == 0
