"""Cross-process cost-store safety: no lost updates, no path drift."""

import json
import subprocess
import sys
from pathlib import Path

from repro.planner.coststore import CostStore

SRC = str(Path(__file__).resolve().parents[2] / "src")

_WRITER = """
import sys
sys.path.insert(0, {src!r})
from repro.planner.coststore import CostStore

store = CostStore({path!r})
for j in range({keys}):
    store.record(f"proc{ident}-key{{j}}", "bucket", 0.01 * ({ident} + 1))
"""


class TestMultiProcessWriters:
    def test_concurrent_recorders_lose_nothing(self, tmp_path):
        # Each process does load-modify-flush of the whole JSON file; the
        # merge-from-disk under the file lock must preserve every other
        # writer's keys, where last-writer-wins used to clobber them.
        path = tmp_path / "costs.json"
        procs, keys_per_proc, nprocs = [], 8, 4
        for ident in range(nprocs):
            procs.append(
                subprocess.Popen(
                    [
                        sys.executable,
                        "-c",
                        _WRITER.format(
                            src=SRC,
                            path=str(path),
                            keys=keys_per_proc,
                            ident=ident,
                        ),
                    ]
                )
            )
        for proc in procs:
            assert proc.wait(timeout=60) == 0

        merged = CostStore(path)
        expected = {
            f"proc{i}-key{j}|bucket"
            for i in range(nprocs)
            for j in range(keys_per_proc)
        }
        assert set(merged.entries()) == expected

    def test_merge_adopts_only_newer_disk_entries(self, tmp_path):
        path = tmp_path / "costs.json"
        ours = CostStore(path)
        ours.record("shared", "bucket", 1.0)
        # Another writer lands an *older* shared entry plus a new key.
        theirs = json.loads(path.read_text())
        theirs["entries"]["shared|bucket"]["seconds"] = 99.0
        theirs["entries"]["shared|bucket"]["updated"] = 1.0
        theirs["entries"]["other|bucket"] = {
            "seconds": 2.0,
            "count": 1,
            "predicted": None,
            "label": "",
            "updated": 2.0,
        }
        path.write_text(json.dumps(theirs))
        ours.record("shared", "bucket", 1.0)
        final = CostStore(path)
        assert final.lookup("other", "bucket") is not None
        assert final.lookup("shared", "bucket")["seconds"] != 99.0


class TestPathPinning:
    def test_path_pinned_at_first_load(self, tmp_path, monkeypatch):
        first = tmp_path / "first"
        second = tmp_path / "second"
        monkeypatch.setenv("REPRO_COSTS_DIR", str(first))
        store = CostStore()
        store.record("conv", "bucket", 0.5)
        assert str(store.path).startswith(str(first))
        # Re-pointing the env after first load must not re-point flushes:
        # the cached entries and the file they came from stay paired.
        monkeypatch.setenv("REPRO_COSTS_DIR", str(second))
        store.record("conv2", "bucket", 0.5)
        assert str(store.path).startswith(str(first))
        assert not second.exists()
        fresh = CostStore()
        assert str(fresh.path).startswith(str(second))
