"""Matrix-aware planning: stats-scaled costs, learned re-ranking."""

import pytest

import repro.obs as obs
from repro import dense_equal, get_conversion
from repro.datagen.matrices import banded, power_law, stencil_offsets
from repro.planner import (
    ConversionPlanner,
    conversion_cost_key,
    estimate_cost,
    record_measurement,
)
from repro.planner.coststore import CostStore
from repro.planner.stats import matrix_stats
from repro.runtime import BCSRMatrix


@pytest.fixture()
def store(tmp_path):
    return CostStore(tmp_path / "plan-costs.json")


class TestEstimateCostCompat:
    """The stats-less path must reproduce the historical estimates."""

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    @pytest.mark.parametrize("pair", [
        ("SCOO", "CSR"), ("SCOO", "DIA"), ("CSR", "CSC"), ("SCOO", "BCSR"),
    ])
    def test_default_equals_explicit_none(self, backend, pair):
        conv = get_conversion(*pair, backend=backend)
        assert estimate_cost(conv) == estimate_cost(conv, None)

    def test_structural_orderings_preserved(self):
        # The original cost-model invariants, now via the new signature.
        fast = get_conversion("SCOO", "CSR")
        permuted = get_conversion("SCOO", "CSR", optimize=False)
        assert estimate_cost(fast, None) < estimate_cost(permuted, None)

    def test_stats_change_the_estimate(self):
        conv = get_conversion("SCOO", "DIA")
        band = matrix_stats(banded(64, 64, stencil_offsets(5), seed=0))
        power = matrix_stats(power_law(64, 64, nnz=300, seed=0))
        assert estimate_cost(conv, band) != estimate_cost(conv, power)
        # Per-matrix costs are workloads, far above structural constants.
        assert estimate_cost(conv, band) > estimate_cost(conv, None)

    def test_dia_cost_scales_with_diagonal_count(self):
        conv = get_conversion("SCOO", "DIA")
        few = matrix_stats(banded(64, 64, stencil_offsets(3), seed=0))
        many = matrix_stats(power_law(64, 64, nnz=few.nnz, seed=0))
        assert many.ndiags > few.ndiags
        assert estimate_cost(conv, many) > estimate_cost(conv, few)


class TestMatrixAwarePlanning:
    def test_stats_none_matches_structural_plan(self, store):
        planner = ConversionPlanner(cost_store=store)
        structural = planner.plan("SCOO", "CSR")
        assert planner.plan("SCOO", "CSR", stats=None) == structural
        assert not structural.matrix_aware

    def test_matrix_aware_plan_carries_stats(self, store):
        planner = ConversionPlanner(cost_store=store)
        stats = matrix_stats(banded(32, 32, stencil_offsets(3), seed=1))
        plan = planner.plan("SCOO", "CSR", stats=stats)
        assert plan.matrix_aware
        assert plan.stats is stats

    def test_learned_costs_flip_the_route(self, store):
        """Seeded measurements re-rank a direct edge into a 2-hop chain."""
        planner = ConversionPlanner(
            ("SCOO", "CSR", "MCOO"), cost_store=store
        )
        coo = banded(32, 32, stencil_offsets(3), seed=2)
        stats = matrix_stats(coo)
        bucket = stats.bucket()

        structural = planner.plan("SCOO", "MCOO")
        assert structural.formats == ("SCOO", "MCOO")

        # Pretend past runs measured the direct conversion as painfully
        # slow on this bucket and the 2-hop chain as fast.
        direct = conversion_cost_key(planner.conversion("SCOO", "MCOO"))
        hop1 = conversion_cost_key(planner.conversion("SCOO", "CSR"))
        hop2 = conversion_cost_key(planner.conversion("CSR", "MCOO"))
        store.record(direct, bucket, 10.0, predicted=1.0)
        store.record(hop1, bucket, 0.001, predicted=1.0)
        store.record(hop2, bucket, 0.001, predicted=1.0)

        aware = planner.plan("SCOO", "MCOO", stats=stats)
        assert aware.formats == ("SCOO", "CSR", "MCOO")
        # Without stats, nothing changes.
        assert planner.plan("SCOO", "MCOO").formats == ("SCOO", "MCOO")

    def test_unmeasured_edges_calibrated_against_learned(self, store):
        planner = ConversionPlanner(cost_store=store)
        stats = matrix_stats(banded(32, 32, stencil_offsets(3), seed=3))
        conv = planner.conversion("SCOO", "CSR")
        # One learned entry for an unrelated conversion sets calibration.
        store.record("elsewhere", "otherbucket", 1.0, predicted=100.0)
        cost = planner.matrix_edge_cost("SCOO", "CSR", stats)
        assert cost == pytest.approx(estimate_cost(conv, stats) * 0.01)


class TestExecuteRecords:
    def test_matrix_aware_execute_learns(self, store):
        planner = ConversionPlanner(cost_store=store)
        coo = banded(32, 32, stencil_offsets(3), seed=4)
        out = planner.execute(coo, "CSR", matrix_aware=True)
        assert dense_equal(out.to_dense(), coo.to_dense())
        assert len(store) >= 1
        entry = store.lookup(
            conversion_cost_key(planner.conversion("SCOO", "CSR")),
            matrix_stats(coo).bucket(),
        )
        assert entry is not None
        assert entry["seconds"] > 0

    def test_structural_execute_does_not_learn(self, store):
        planner = ConversionPlanner(cost_store=store)
        coo = banded(32, 32, stencil_offsets(3), seed=5)
        planner.execute(coo, "CSR", matrix_aware=False)
        assert len(store) == 0

    def test_execute_plan_returns_timings(self, store):
        planner = ConversionPlanner(cost_store=store)
        coo = banded(32, 32, stencil_offsets(3), seed=6)
        plan = planner.plan("SCOO", "CSR", stats=matrix_stats(coo))
        out, timings = planner.execute_plan(plan, coo, original=coo)
        assert dense_equal(out.to_dense(), coo.to_dense())
        assert len(timings) == len(plan.steps)
        assert all(t.seconds > 0 and t.predicted > 0 for t in timings)

    def test_prediction_ratio_metric_observed(self, store):
        conv = get_conversion("SCOO", "CSR")
        stats = matrix_stats(banded(32, 32, stencil_offsets(3), seed=7))
        # First record bootstraps calibration; second observes the ratio.
        record_measurement(store, conv, stats, 0.01)
        record_measurement(store, conv, stats, 0.01)
        metric = obs.METRICS.histogram(
            "repro_cost_prediction_ratio", ""
        )
        snap = metric.snapshot()
        assert sum(s["value"]["count"] for s in snap["samples"]) >= 1


class TestParameterizedSources:
    def test_bcsr3_container_routes_out(self, store):
        planner = ConversionPlanner(cost_store=store)
        dense = banded(12, 12, stencil_offsets(3), seed=8).to_dense()
        container = BCSRMatrix.from_dense(dense, 3)
        out = planner.execute(container, "CSR")
        assert dense_equal(out.to_dense(), dense)

    def test_parameterized_destination_planned(self, store):
        # Tuned formats ("BCSR3") are not graph nodes but must still be
        # reachable as plan endpoints.
        planner = ConversionPlanner(cost_store=store)
        plan = planner.plan("SCOO", "BCSR3")
        assert plan.formats[-1] == "BCSR3"
        coo = banded(12, 12, stencil_offsets(3), seed=10)
        out, _ = planner.execute_plan(plan, coo, original=coo)
        assert out.bsize == 3
        assert dense_equal(out.to_dense(), coo.to_dense())

    def test_bcsr3_matrix_aware(self, store):
        planner = ConversionPlanner(cost_store=store)
        dense = banded(12, 12, stencil_offsets(3), seed=9).to_dense()
        container = BCSRMatrix.from_dense(dense, 3)
        out = planner.execute(container, "CSR", matrix_aware=True)
        assert dense_equal(out.to_dense(), dense)
        assert len(store) >= 1
