"""The one-pass matrix profiler: correctness per container, bucketing."""

import pytest

from repro.datagen.matrices import (
    banded,
    fem_blocks,
    power_law,
    stencil_offsets,
)
from repro.runtime import (
    BCSRMatrix,
    COOMatrix,
    CSCMatrix,
    CSRMatrix,
    DIAMatrix,
    ELLMatrix,
)
from repro.planner.stats import BLOCK_CANDIDATES, matrix_stats


def _dense(coo):
    return coo.to_dense()


class TestProfiles:
    def test_banded_profile(self):
        coo = banded(64, 64, stencil_offsets(5), seed=1)
        stats = matrix_stats(coo)
        assert stats.nrows == stats.ncols == 64
        assert stats.nnz == coo.nnz
        assert stats.ndiags <= 5
        # Stencil rows are near-uniform: tiny coefficient of variation.
        assert stats.row_cv < 0.25
        assert stats.bandwidth <= max(abs(o) for o in stencil_offsets(5))

    def test_power_law_profile(self):
        coo = power_law(96, 96, nnz=800, seed=2)
        stats = matrix_stats(coo)
        # Skewed degree distribution: many diagonals, high variation.
        assert stats.ndiags > 30
        assert stats.row_cv > 0.5
        assert stats.dia_padding > 2.0

    def test_blocked_profile_prefers_native_block(self):
        coo = fem_blocks(60, block=4, seed=3)
        stats = matrix_stats(coo)
        # The generator's block size fills best among the candidates.
        assert stats.fill(4) == max(
            stats.fill(b) for b in BLOCK_CANDIDATES
        )

    def test_empty_matrix(self):
        stats = matrix_stats(COOMatrix(3, 4, [], [], []))
        assert stats.nnz == 0
        assert stats.density == 0.0
        assert stats.dia_padding == 1.0
        assert stats.bucket()  # still a usable key


class TestContainerEquivalence:
    """Every container of the same matrix profiles identically."""

    def test_all_containers_agree(self):
        coo = banded(32, 32, stencil_offsets(3), seed=4)
        dense = _dense(coo)
        reference = matrix_stats(COOMatrix.from_dense(dense))
        containers = [
            CSRMatrix.from_dense(dense),
            CSCMatrix.from_dense(dense),
            DIAMatrix.from_dense(dense),
            BCSRMatrix.from_dense(dense, 2),
            BCSRMatrix.from_dense(dense, 3),
            ELLMatrix.from_dense(dense),
        ]
        for container in containers:
            stats = matrix_stats(container)
            assert stats == reference, type(container).__name__

    def test_padded_ell_width_does_not_change_profile(self):
        coo = banded(24, 24, stencil_offsets(3), seed=5)
        dense = _dense(coo)
        natural = matrix_stats(ELLMatrix.from_dense(dense))
        padded = matrix_stats(ELLMatrix.from_dense(dense, width=7))
        assert padded == natural


class TestBuckets:
    def test_stable_across_seeds(self):
        buckets = {
            matrix_stats(banded(128, 128, stencil_offsets(9), seed=s)).bucket()
            for s in range(4)
        }
        assert len(buckets) == 1

    def test_distinguishes_structure(self):
        band = matrix_stats(banded(128, 128, stencil_offsets(9), seed=0))
        power = matrix_stats(power_law(128, 128, nnz=band.nnz, seed=0))
        assert band.bucket() != power.bucket()

    def test_distinguishes_scale(self):
        small = matrix_stats(banded(32, 32, stencil_offsets(5), seed=0))
        large = matrix_stats(banded(512, 512, stencil_offsets(5), seed=0))
        assert small.bucket() != large.bucket()


class TestFillFallback:
    def test_nearest_profiled_block(self):
        coo = fem_blocks(40, block=4, seed=6)
        stats = matrix_stats(coo, blocks=(2, 4))
        # 5 is unprofiled; the nearest profiled size (4) stands in.
        assert stats.fill(5) == stats.fill(4)

    def test_no_profile_defaults_dense(self):
        coo = banded(16, 16, [0], seed=0)
        stats = matrix_stats(coo, blocks=())
        assert stats.fill(3) == 1.0


class TestEllWidthGuard:
    def test_truncating_width_rejected(self):
        dense = [[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]]
        with pytest.raises(ValueError):
            ELLMatrix.from_dense(dense, width=2)
