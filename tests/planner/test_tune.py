"""The parameterized-format auto-tuner."""

import pytest

from repro import convert, dense_equal
from repro.datagen.matrices import (
    banded,
    fem_blocks,
    power_law,
    stencil_offsets,
)
from repro.planner.coststore import CostStore
from repro.planner.stats import matrix_stats
from repro.planner.tune import TuneError, candidates_for, tune


@pytest.fixture()
def store(tmp_path):
    return CostStore(tmp_path / "tune-costs.json")


class TestCandidates:
    def test_bcsr_blocks_capped_by_dims(self):
        stats = matrix_stats(banded(4, 4, [0, 1], seed=0))
        viable, rejected = candidates_for("BCSR", stats)
        assert all(c.block <= 4 for c in viable)
        assert any("exceeds matrix dimensions" in r for r in rejected.values())

    def test_block_one_never_enumerated(self):
        # Case 6 needs a non-trivial affine decomposition; block 1 is
        # excluded at the source (BLOCK_CANDIDATES starts at 2).
        stats = matrix_stats(fem_blocks(40, block=4, seed=0))
        viable, _ = candidates_for("BCSR", stats)
        assert all(c.block >= 2 for c in viable)

    def test_dia_rejected_over_budget(self):
        stats = matrix_stats(power_law(128, 128, nnz=300, seed=1))
        assert stats.dia_padding > 4
        viable, rejected = candidates_for("DIA", stats, budget=4.0)
        assert viable == []
        assert "DIA" in rejected

    def test_dia_linear_and_binary_within_budget(self):
        stats = matrix_stats(banded(64, 64, stencil_offsets(5), seed=0))
        viable, _ = candidates_for("DIA", stats)
        labels = {c.label for c in viable}
        assert labels == {"DIA linear-search", "DIA binary-search"}

    def test_unknown_family(self):
        stats = matrix_stats(banded(8, 8, [0], seed=0))
        with pytest.raises(TuneError):
            candidates_for("CSR", stats)


class TestTune:
    def test_deterministic_without_measurement(self, store):
        coo = fem_blocks(36, block=3, seed=2)
        runs = [
            tune(coo, "BCSR", measure=False, store=store, seed=s)
            for s in (0, 1, 2)
        ]
        orders = [
            [c.candidate.label for c in r.candidates] for r in runs
        ]
        assert orders[0] == orders[1] == orders[2]
        assert runs[0].measured_runs == 0

    def test_predicted_ranking_prefers_native_block(self, store):
        # Block 7 doesn't divide the other candidate sizes, so every
        # non-native tile straddles block boundaries and loses fill.
        coo = fem_blocks(49, block=7, seed=3)
        result = tune(coo, "BCSR", measure=False, store=store)
        assert result.best.candidate.block == 7

    def test_measured_confirmation_prunes_to_top_k(self, store):
        coo = fem_blocks(36, block=3, seed=4)
        result = tune(coo, "BCSR", store=store, top_k=2, repeats=1)
        measured = [c for c in result.candidates if c.measured_runs]
        assert len(measured) == 2
        assert result.best in measured

    def test_warm_store_skips_measurement(self, store):
        coo = banded(64, 64, stencil_offsets(9), seed=5)
        cold = tune(coo, "DIA", store=store, repeats=1)
        assert cold.measured_runs > 0
        warm = tune(coo, "DIA", store=store, repeats=1)
        assert warm.measured_runs == 0
        assert all(c.learned for c in warm.candidates if c.seconds is not None)
        assert warm.best.candidate.label == cold.best.candidate.label

    def test_learned_costs_transfer_across_seeds(self, store):
        # Same generator family and scale -> same stats bucket.
        tune(banded(64, 64, stencil_offsets(9), seed=6), "DIA",
             store=store, repeats=1)
        sibling = tune(banded(64, 64, stencil_offsets(9), seed=7), "DIA",
                       store=store, repeats=1)
        assert sibling.measured_runs == 0

    def test_tune_error_when_nothing_viable(self, store, monkeypatch):
        monkeypatch.setenv("REPRO_DIA_BUDGET", "2")
        coo = power_law(128, 128, nnz=300, seed=8)
        with pytest.raises(TuneError):
            tune(coo, "DIA", store=store, measure=False)


class TestTunedDestinationsExecute:
    """Every tuned parameterization must convert correctly, both backends."""

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_bcsr_candidates_convert(self, store, backend):
        coo = fem_blocks(30, block=3, seed=9)
        dense = coo.to_dense()
        result = tune(coo, "BCSR", store=store, measure=False,
                      backend=backend)
        for cand in result.candidates:
            out = convert(coo, cand.candidate.dst, backend=backend,
                          validate="full")
            assert dense_equal(out.to_dense(), dense), cand.candidate.label
            assert out.bsize == cand.candidate.block

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_dia_candidates_convert(self, store, backend):
        coo = banded(32, 32, stencil_offsets(5), seed=10)
        dense = coo.to_dense()
        result = tune(coo, "DIA", store=store, measure=False,
                      backend=backend)
        for cand in result.candidates:
            out = convert(coo, cand.candidate.dst, backend=backend,
                          binary_search=cand.candidate.binary_search,
                          validate="full")
            assert dense_equal(out.to_dense(), dense), cand.candidate.label
