"""Tests for the CSF (compressed sparse fiber) container and conversions."""

import pytest

from repro import convert
from repro.datagen import synthetic_tensor3d
from repro.formats import container_format, csf, get_format
from repro.runtime import COOTensor3D, CSFTensor
from repro.synthesis import SynthesisError, synthesize


@pytest.fixture(scope="module")
def tensor():
    return synthetic_tensor3d((24, 20, 16), 200, seed=12)


class TestAssembly:
    def test_roundtrip(self, tensor):
        c = CSFTensor.from_coo(tensor)
        c.check()
        assert c.to_dict() == tensor.to_dict()

    def test_storage_is_lexicographic(self, tensor):
        c = CSFTensor.from_coo(tensor)
        flat = list(c.nonzeros())
        coords = [(i, j, k) for i, j, k, _ in flat]
        assert coords == sorted(coords)

    def test_compression_counts(self, tensor):
        c = CSFTensor.from_coo(tensor)
        distinct_roots = len(set(tensor.row))
        distinct_fibers = len(set(zip(tensor.row, tensor.col)))
        assert c.nroots == distinct_roots
        assert c.nfibers == distinct_fibers

    def test_from_unsorted_coo(self):
        t = COOTensor3D((4, 4, 4), [3, 0, 3], [1, 2, 1], [0, 1, 2],
                        [1.0, 2.0, 3.0])
        c = CSFTensor.from_coo(t)
        c.check()
        assert c.to_dict() == t.to_dict()

    def test_single_entry(self):
        t = COOTensor3D((2, 2, 2), [1], [0], [1], [5.0])
        c = CSFTensor.from_coo(t)
        c.check()
        assert (c.nroots, c.nfibers, c.nnz) == (1, 1, 1)

    def test_to_coo(self, tensor):
        c = CSFTensor.from_coo(tensor)
        back = c.to_coo()
        back.check()
        assert back.to_dict() == tensor.to_dict()


class TestValidation:
    def make(self):
        t = COOTensor3D((4, 4, 4), [0, 0, 2], [1, 3, 0], [2, 1, 3],
                        [1.0, 2.0, 3.0])
        return CSFTensor.from_coo(t)

    def test_bad_fptr(self):
        c = self.make()
        c.fptr[-1] += 1
        with pytest.raises(ValueError):
            c.check()

    def test_unsorted_roots(self):
        c = self.make()
        c.rootidx.reverse()
        with pytest.raises(ValueError):
            c.check()

    def test_unsorted_k(self):
        t = COOTensor3D((4, 4, 4), [0, 0], [1, 1], [0, 3], [1.0, 2.0])
        c = CSFTensor.from_coo(t)
        c.kidx.reverse()
        with pytest.raises(ValueError):
            c.check()


class TestDescriptor:
    def test_in_library(self):
        fmt = get_format("CSF")
        assert fmt.rank == 3
        assert fmt.index_ufs() == {"rootidx", "fptr", "fibidx", "kptr", "kidx"}

    def test_container_format(self, tensor):
        assert container_format(CSFTensor.from_coo(tensor)) == "CSF"

    def test_strictly_monotonic_roots(self):
        fmt = csf()
        assert fmt.monotonic["rootidx"].strict
        assert not fmt.monotonic["fptr"].strict


class TestConversions:
    def test_csf_to_scoo3d_identity_fast_path(self, tensor):
        c = CSFTensor.from_coo(tensor)
        from repro import get_conversion

        conv = get_conversion("CSF", "SCOO3D")
        assert "OrderedList" not in conv.source  # orderings match
        out = convert(c, "SCOO3D")
        assert (out.row, out.col, out.z) == (tensor.row, tensor.col, tensor.z)

    def test_csf_to_mcoo3(self, tensor):
        c = CSFTensor.from_coo(tensor)
        out = convert(c, "MCOO3")
        out.check()
        assert out.to_dict() == tensor.to_dict()

    def test_csf_destination_rejected(self):
        # NROOT/NFIB are distinct-value counts the cases cannot derive.
        from repro.formats import coo3d

        with pytest.raises(SynthesisError):
            synthesize(coo3d(sorted_lex=True), csf())


class TestKernels:
    def test_value_sum(self, tensor):
        from repro.kernels import run_kernel

        c = CSFTensor.from_coo(tensor)
        total = run_kernel(c, "value_sum")
        assert abs(total - sum(tensor.val)) < 1e-9

    def test_scale(self, tensor):
        from repro.kernels import run_kernel

        c = CSFTensor.from_coo(tensor)
        scaled = run_kernel(c, "scale", alpha=2.0)
        assert all(abs(s - 2 * v) < 1e-12 for s, v in zip(scaled, c.val))
