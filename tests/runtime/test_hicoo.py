"""Tests for the HiCOO hierarchical tensor container."""

import pytest

from repro.datagen import synthetic_tensor3d
from repro.runtime import COOTensor3D, HiCOOTensor, MortonCOOTensor3D
from repro.baselines.hicoo import blocked_morton_sort


@pytest.fixture(scope="module")
def tensor():
    return synthetic_tensor3d((32, 28, 20), 300, seed=8)


class TestAssembly:
    def test_roundtrip(self, tensor):
        h = HiCOOTensor.from_coo(tensor, block_bits=3)
        h.check()
        assert h.to_dict() == tensor.to_dict()
        assert h.nnz == tensor.nnz

    @pytest.mark.parametrize("bits", [1, 2, 4, 6])
    def test_any_block_size(self, tensor, bits):
        h = HiCOOTensor.from_coo(tensor, block_bits=bits)
        h.check()
        assert h.to_dict() == tensor.to_dict()

    def test_storage_order_matches_blocked_sort(self, tensor):
        """HiCOO's nonzero order IS the blocked z-Morton order (Table 4)."""
        h = HiCOOTensor.from_coo(tensor, block_bits=4)
        reordered = blocked_morton_sort(tensor, block_bits=4)
        flat = list(h.nonzeros())
        assert [e[0] for e in flat] == reordered.row
        assert [e[1] for e in flat] == reordered.col
        assert [e[2] for e in flat] == reordered.z
        assert [e[3] for e in flat] == reordered.val

    def test_block_count_shrinks_with_bigger_blocks(self, tensor):
        small = HiCOOTensor.from_coo(tensor, block_bits=2)
        large = HiCOOTensor.from_coo(tensor, block_bits=5)
        assert large.nblocks <= small.nblocks

    def test_invalid_block_bits(self, tensor):
        with pytest.raises(ValueError):
            HiCOOTensor.from_coo(tensor, block_bits=0)

    def test_to_coo(self, tensor):
        h = HiCOOTensor.from_coo(tensor, block_bits=3)
        back = h.to_coo()
        back.check()
        assert back.to_dict() == tensor.to_dict()


class TestValidation:
    def small(self):
        t = COOTensor3D((8, 8, 8), [0, 5], [1, 6], [2, 7], [1.0, 2.0])
        return HiCOOTensor.from_coo(t, block_bits=2)

    def test_check_passes(self):
        self.small().check()

    def test_bad_bptr_rejected(self):
        h = self.small()
        h.bptr[-1] += 1
        with pytest.raises(ValueError):
            h.check()

    def test_out_of_block_offset_rejected(self):
        h = self.small()
        h.eind[0] = (9, 0, 0)
        with pytest.raises(ValueError):
            h.check()

    def test_block_order_enforced(self):
        h = self.small()
        h.bind.reverse()
        with pytest.raises(ValueError):
            h.check()

    def test_out_of_bounds_coordinate_rejected(self):
        t = COOTensor3D((5, 5, 5), [4], [4], [4], [1.0])
        h = HiCOOTensor.from_coo(t, block_bits=2)
        h.dims = (4, 5, 5)
        with pytest.raises(ValueError):
            h.check()


class TestMTTKRP:
    def test_matches_coo(self, tensor):
        import random

        from repro.kernels import matrices_close, mttkrp_coo, mttkrp_hicoo

        rng = random.Random(5)
        rank = 3
        B = [[rng.uniform(-1, 1) for _ in range(rank)]
             for _ in range(tensor.dims[1])]
        C = [[rng.uniform(-1, 1) for _ in range(rank)]
             for _ in range(tensor.dims[2])]
        h = HiCOOTensor.from_coo(tensor, block_bits=3)
        assert matrices_close(mttkrp_coo(tensor, B, C),
                              mttkrp_hicoo(h, B, C))

    def test_morton_order_agrees(self, tensor):
        import random

        from repro.kernels import matrices_close, mttkrp_coo

        rng = random.Random(6)
        B = [[rng.uniform(-1, 1)] for _ in range(tensor.dims[1])]
        C = [[rng.uniform(-1, 1)] for _ in range(tensor.dims[2])]
        mcoo = MortonCOOTensor3D.from_coo(tensor)
        assert matrices_close(mttkrp_coo(tensor, B, C),
                              mttkrp_coo(mcoo, B, C))

    def test_empty_rank(self, tensor):
        from repro.kernels import mttkrp_coo

        out = mttkrp_coo(tensor, [[] for _ in range(tensor.dims[1])],
                         [[] for _ in range(tensor.dims[2])])
        assert out == [[] for _ in range(tensor.dims[0])]
