"""Unit tests for the sparse matrix containers."""

import pytest

from repro.runtime import (
    BCSRMatrix,
    COOMatrix,
    CSCMatrix,
    CSRMatrix,
    DIAMatrix,
    ELLMatrix,
    MortonCOOMatrix,
    dense_equal,
)

DENSE = [
    [1.0, 0.0, 2.0, 0.0],
    [0.0, 0.0, 0.0, 0.0],
    [3.0, 4.0, 0.0, 0.0],
    [0.0, 0.0, 5.0, 6.0],
]


class TestDenseEqual:
    def test_equal(self):
        assert dense_equal(DENSE, [row[:] for row in DENSE])

    def test_value_mismatch(self):
        other = [row[:] for row in DENSE]
        other[0][0] = 9.0
        assert not dense_equal(DENSE, other)

    def test_shape_mismatch(self):
        assert not dense_equal(DENSE, DENSE[:-1])
        assert not dense_equal([[1.0]], [[1.0, 0.0]])

    def test_tolerance(self):
        assert dense_equal([[1.0]], [[1.0 + 1e-12]], tol=1e-9)


class TestCOO:
    def test_roundtrip(self):
        coo = COOMatrix.from_dense(DENSE)
        coo.check()
        assert dense_equal(coo.to_dense(), DENSE)
        assert coo.nnz == 6

    def test_from_dense_is_sorted(self):
        assert COOMatrix.from_dense(DENSE).is_sorted_lexicographic()

    def test_sorted_lexicographic(self):
        coo = COOMatrix(2, 2, [1, 0], [0, 1], [2.0, 1.0])
        assert not coo.is_sorted_lexicographic()
        sorted_coo = coo.sorted_lexicographic()
        assert sorted_coo.is_sorted_lexicographic()
        assert dense_equal(sorted_coo.to_dense(), coo.to_dense())

    def test_check_rejects_out_of_bounds(self):
        with pytest.raises(ValueError):
            COOMatrix(2, 2, [2], [0], [1.0]).check()

    def test_check_rejects_duplicates(self):
        with pytest.raises(ValueError):
            COOMatrix(2, 2, [0, 0], [1, 1], [1.0, 2.0]).check()

    def test_check_rejects_ragged_arrays(self):
        with pytest.raises(ValueError):
            COOMatrix(2, 2, [0], [0, 1], [1.0]).check()

    def test_nonzeros_iteration(self):
        coo = COOMatrix.from_dense(DENSE)
        assert list(coo.nonzeros())[0] == (0, 0, 1.0)


class TestMortonCOO:
    def test_from_coo_orders_by_morton(self):
        coo = COOMatrix.from_dense(DENSE)
        mcoo = MortonCOOMatrix.from_coo(coo)
        mcoo.check()
        assert dense_equal(mcoo.to_dense(), DENSE)

    def test_check_rejects_wrong_order(self):
        with pytest.raises(ValueError):
            MortonCOOMatrix(2, 2, [1, 0], [1, 0], [1.0, 2.0]).check()


class TestCSR:
    def test_roundtrip(self):
        csr = CSRMatrix.from_dense(DENSE)
        csr.check()
        assert dense_equal(csr.to_dense(), DENSE)
        assert csr.rowptr == [0, 2, 2, 4, 6]

    def test_check_rejects_bad_rowptr_length(self):
        with pytest.raises(ValueError):
            CSRMatrix(3, 3, [0, 1], [0], [1.0]).check()

    def test_check_rejects_decreasing_rowptr(self):
        with pytest.raises(ValueError):
            CSRMatrix(2, 2, [0, 2, 1], [0, 1], [1.0, 2.0]).check()

    def test_check_rejects_unsorted_columns(self):
        with pytest.raises(ValueError):
            CSRMatrix(1, 3, [0, 2], [2, 0], [1.0, 2.0]).check()

    def test_nonzeros_iteration(self):
        csr = CSRMatrix.from_dense(DENSE)
        assert list(csr.nonzeros()) == list(COOMatrix.from_dense(DENSE).nonzeros())


class TestCSC:
    def test_roundtrip(self):
        csc = CSCMatrix.from_dense(DENSE)
        csc.check()
        assert dense_equal(csc.to_dense(), DENSE)
        assert csc.colptr == [0, 2, 3, 5, 6]

    def test_check_rejects_bad_colptr_end(self):
        with pytest.raises(ValueError):
            CSCMatrix(2, 2, [0, 1, 1], [0], [1.0, 2.0]).check()

    def test_check_rejects_unsorted_rows(self):
        with pytest.raises(ValueError):
            CSCMatrix(3, 1, [0, 2], [2, 0], [1.0, 2.0]).check()


class TestDIA:
    def test_roundtrip(self):
        dia = DIAMatrix.from_dense(DENSE)
        dia.check()
        assert dense_equal(dia.to_dense(), DENSE)

    def test_offsets_sorted_unique(self):
        dia = DIAMatrix.from_dense(DENSE)
        assert dia.off == sorted(set(dia.off))

    def test_data_layout_is_row_major_by_diagonal(self):
        # data[ND * i + d] per the paper's kd = ND*ii + d access.
        dia = DIAMatrix.from_dense([[1.0, 2.0], [0.0, 3.0]])
        assert dia.off == [0, 1]
        assert dia.data == [1.0, 2.0, 3.0, 0.0]

    def test_check_rejects_unsorted_offsets(self):
        with pytest.raises(ValueError):
            DIAMatrix(2, 2, [1, 0], [0.0] * 4).check()

    def test_check_rejects_bad_data_length(self):
        with pytest.raises(ValueError):
            DIAMatrix(2, 2, [0], [0.0]).check()

    def test_check_rejects_out_of_range_offset(self):
        with pytest.raises(ValueError):
            DIAMatrix(2, 2, [5], [0.0] * 2).check()


class TestBCSR:
    def test_roundtrip_block2(self):
        bcsr = BCSRMatrix.from_dense(DENSE, bsize=2)
        bcsr.check()
        assert dense_equal(bcsr.to_dense(), DENSE)

    def test_roundtrip_uneven_block(self):
        dense = [[1.0, 0.0, 2.0], [0.0, 3.0, 0.0], [4.0, 0.0, 5.0]]
        bcsr = BCSRMatrix.from_dense(dense, bsize=2)
        bcsr.check()
        assert dense_equal(bcsr.to_dense(), dense)

    def test_block_count(self):
        bcsr = BCSRMatrix.from_dense(DENSE, bsize=2)
        assert bcsr.nblockrows == 2
        assert bcsr.nblocks == 4  # every 2x2 block of DENSE has a nonzero

    def test_check_rejects_bad_block_size(self):
        with pytest.raises(ValueError):
            BCSRMatrix(2, 2, 0, [0, 0], [], []).check()


class TestELL:
    def test_roundtrip(self):
        ell = ELLMatrix.from_dense(DENSE)
        ell.check()
        assert dense_equal(ell.to_dense(), DENSE)
        assert ell.width == 2

    def test_padding(self):
        ell = ELLMatrix.from_dense(DENSE)
        # Row 1 is empty: all padding.
        row1 = ell.col[1 * ell.width : 2 * ell.width]
        assert all(c == ELLMatrix.PAD for c in row1)

    def test_check_rejects_wrong_lengths(self):
        with pytest.raises(ValueError):
            ELLMatrix(2, 2, 1, [0], [1.0, 2.0]).check()


class TestEmptyMatrices:
    def test_empty_roundtrips(self):
        empty = [[0.0, 0.0], [0.0, 0.0]]
        for cls in (COOMatrix, CSRMatrix, CSCMatrix):
            m = cls.from_dense(empty)
            m.check()
            assert dense_equal(m.to_dense(), empty)
            assert m.nnz == 0

    def test_empty_dia(self):
        dia = DIAMatrix.from_dense([[0.0, 0.0], [0.0, 0.0]])
        dia.check()
        assert dia.ndiags == 0


class TestTypedCheckErrors:
    """check() raises the structured error hierarchy, not bare ValueError."""

    def test_coo_duplicate_error_carries_evidence(self):
        from repro.errors import DuplicateCoordinateError

        coo = COOMatrix(3, 3, [0, 1, 0], [1, 0, 1], [1.0, 2.0, 3.0])
        with pytest.raises(DuplicateCoordinateError) as exc:
            coo.check()
        assert exc.value.coordinate == (0, 1)
        assert exc.value.positions == (0, 2)

    def test_coo_bounds_error_carries_coordinate(self):
        from repro.errors import BoundsError

        coo = COOMatrix(2, 2, [0, 1], [0, 9], [1.0, 2.0])
        with pytest.raises(BoundsError) as exc:
            coo.check()
        assert exc.value.coordinate == (1, 9)
        assert exc.value.position == 1

    def test_csr_rejects_duplicate_columns_in_row(self):
        from repro.errors import DuplicateCoordinateError

        csr = CSRMatrix(2, 3, [0, 2, 3], [1, 1, 2], [1.0, 2.0, 3.0])
        with pytest.raises(DuplicateCoordinateError):
            csr.check()

    def test_csr_unsorted_columns_is_unsorted_error(self):
        from repro.errors import UnsortedInputError

        csr = CSRMatrix(2, 3, [0, 2, 3], [2, 0, 1], [1.0, 2.0, 3.0])
        with pytest.raises(UnsortedInputError):
            csr.check()

    def test_csc_rejects_duplicate_rows_in_column(self):
        from repro.errors import DuplicateCoordinateError

        csc = CSCMatrix(3, 2, [0, 2, 3], [1, 1, 2], [1.0, 2.0, 3.0])
        with pytest.raises(DuplicateCoordinateError):
            csc.check()

    def test_csc_unsorted_rows_is_unsorted_error(self):
        from repro.errors import UnsortedInputError

        csc = CSCMatrix(3, 2, [0, 2, 3], [2, 0, 1], [1.0, 2.0, 3.0])
        with pytest.raises(UnsortedInputError):
            csc.check()

    def test_first_unsorted_position(self):
        coo = COOMatrix(3, 3, [0, 2, 1], [0, 0, 0], [1.0, 2.0, 3.0])
        assert coo.first_unsorted_position() == 2
        assert COOMatrix.from_dense(DENSE).first_unsorted_position() is None

    def test_check_against_dense_accepts_equal(self):
        CSRMatrix.from_dense(DENSE).check_against_dense(DENSE)

    def test_check_against_dense_rejects_mismatch(self):
        from repro.errors import DenseMismatchError

        other = [row[:] for row in DENSE]
        other[0][0] = 9.0
        with pytest.raises(DenseMismatchError) as exc:
            CSRMatrix.from_dense(DENSE).check_against_dense(other)
        assert exc.value.coordinate == (0, 0)

    def test_check_against_dense_tolerance(self):
        near = [[v + 1e-12 for v in row] for row in DENSE]
        CSRMatrix.from_dense(DENSE).check_against_dense(near, tol=1e-9)


class TestDCSR:
    def test_roundtrip(self):
        from repro.runtime import DCSRMatrix

        dcsr = DCSRMatrix.from_dense(DENSE)
        dcsr.check()
        assert dense_equal(dcsr.to_dense(), DENSE)

    def test_empty_rows_elided(self):
        from repro.runtime import DCSRMatrix

        dcsr = DCSRMatrix.from_dense(DENSE)
        # Row 1 of DENSE is empty and must not appear.
        assert dcsr.rowidx == [0, 2, 3]
        assert dcsr.ndrows == 3
        assert dcsr.nnz == 6

    def test_all_empty(self):
        from repro.runtime import DCSRMatrix

        dcsr = DCSRMatrix.from_dense([[0.0, 0.0], [0.0, 0.0]])
        dcsr.check()
        assert dcsr.rowidx == [] and dcsr.dptr == [0]
        assert dense_equal(dcsr.to_dense(), [[0.0, 0.0], [0.0, 0.0]])

    def test_check_rejects_unsorted_rowidx(self):
        from repro.runtime import DCSRMatrix

        bad = DCSRMatrix(3, 2, [1, 0], [0, 1, 2], [0, 1], [1.0, 2.0])
        with pytest.raises(ValueError):
            bad.check()

    def test_check_rejects_empty_populated_row(self):
        from repro.runtime import DCSRMatrix

        bad = DCSRMatrix(3, 2, [0, 1], [0, 1, 1], [0], [1.0])
        with pytest.raises(ValueError):
            bad.check()


class TestBCSC:
    def test_roundtrip_block2(self):
        from repro.runtime import BCSCMatrix

        bcsc = BCSCMatrix.from_dense(DENSE, 2)
        bcsc.check()
        assert dense_equal(bcsc.to_dense(), DENSE)

    def test_roundtrip_uneven_block(self):
        from repro.runtime import BCSCMatrix

        dense = [[1.0, 0.0, 2.0], [0.0, 3.0, 0.0], [4.0, 0.0, 5.0]]
        bcsc = BCSCMatrix.from_dense(dense, 2)
        bcsc.check()
        assert dense_equal(bcsc.to_dense(), dense)

    def test_block_layout_mirrors_bcsr(self):
        from repro.runtime import BCSCMatrix

        bcsr = BCSRMatrix.from_dense(DENSE, bsize=2)
        bcsc = BCSCMatrix.from_dense(DENSE, 2)
        assert bcsc.nblocks == bcsr.nblocks
        # Within-block data stays row-major in both layouts, so the same
        # block holds the same 4 values in the same order.
        assert sorted(map(tuple, zip(*[iter(bcsc.data)] * 4))) == \
            sorted(map(tuple, zip(*[iter(bcsr.data)] * 4)))

    def test_check_rejects_unsorted_block_rows(self):
        from repro.runtime import BCSCMatrix

        bad = BCSCMatrix(4, 2, 2, [0, 2], [1, 0], [1.0] * 8)
        with pytest.raises(ValueError):
            bad.check()
