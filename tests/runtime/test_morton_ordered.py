"""Unit tests for Morton codes, ordered structures, and the executor."""

import pytest

from repro.runtime import (
    COOTensor3D,
    LexBucketPermutation,
    MortonCOOTensor3D,
    OrderedList,
    OrderedSet,
    compile_inspector,
    demorton2,
    demorton3,
    morton,
    morton2,
    morton3,
    morton_nd,
)
from repro.runtime.executor import bsearch


class TestMorton:
    def test_known_values(self):
        assert morton2(0, 0) == 0
        assert morton2(1, 0) == 1
        assert morton2(0, 1) == 2
        assert morton2(1, 1) == 3
        assert morton2(2, 0) == 4

    def test_morton3_known_values(self):
        assert morton3(1, 0, 0) == 1
        assert morton3(0, 1, 0) == 2
        assert morton3(0, 0, 1) == 4
        assert morton3(1, 1, 1) == 7

    def test_roundtrip_2d(self):
        for i in range(17):
            for j in range(17):
                assert demorton2(morton2(i, j)) == (i, j)

    def test_roundtrip_3d(self):
        for i in range(0, 30, 3):
            for j in range(0, 30, 5):
                for k in range(0, 30, 7):
                    assert demorton3(morton3(i, j, k)) == (i, j, k)

    def test_morton_dispatch(self):
        assert morton(3, 5) == morton2(3, 5)
        assert morton(3, 5, 7) == morton3(3, 5, 7)

    def test_morton_nd_matches_specialized(self):
        assert morton_nd([3, 5]) == morton2(3, 5)
        assert morton_nd([3, 5, 7]) == morton3(3, 5, 7)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            morton2(-1, 0)
        with pytest.raises(ValueError):
            morton3(0, -1, 0)

    def test_large_coordinates(self):
        i, j = 2**40 + 123, 2**35 + 7
        assert demorton2(morton2(i, j)) == (i, j)


class TestOrderedList:
    def test_insertion_order_without_key(self):
        ol = OrderedList(2)
        ol.insert(5, 5)
        ol.insert(1, 1)
        assert ol.lookup(5, 5) == 0
        assert ol.lookup(1, 1) == 1

    def test_key_ordering(self):
        ol = OrderedList(2, key=lambda i, j: (j, i))
        ol.insert(0, 1)
        ol.insert(1, 0)
        assert ol.lookup(1, 0) == 0
        assert ol.lookup(0, 1) == 1

    def test_descending(self):
        ol = OrderedList(1, key=lambda x: x, op=">")
        for v in (1, 3, 2):
            ol.insert(v)
        assert ol.lookup(3) == 0
        assert ol.lookup(1) == 2

    def test_morton_key(self):
        ol = OrderedList(2, key=morton2)
        ol.insert(1, 1)   # morton 3
        ol.insert(0, 1)   # morton 2
        assert ol.lookup(0, 1) == 0

    def test_stable_for_equal_keys(self):
        ol = OrderedList(2, key=lambda i, j: j)
        ol.insert(7, 0)
        ol.insert(3, 0)
        assert ol.lookup(7, 0) == 0  # first inserted wins ties

    def test_arity_enforced(self):
        ol = OrderedList(2)
        with pytest.raises(ValueError):
            ol.insert(1)

    def test_missing_lookup_raises(self):
        ol = OrderedList(1)
        ol.insert(1)
        with pytest.raises(KeyError):
            ol.lookup(2)

    def test_len_and_ordered_items(self):
        ol = OrderedList(1, key=lambda x: x)
        for v in (3, 1, 2):
            ol.insert(v)
        assert len(ol) == 3
        assert ol.ordered_items() == [(1,), (2,), (3,)]

    def test_call_is_lookup(self):
        ol = OrderedList(1)
        ol.insert(9)
        assert ol(9) == 0

    def test_invalid_op(self):
        with pytest.raises(ValueError):
            OrderedList(1, op="<=")


class TestLexBucketPermutation:
    def test_matches_ordered_list(self):
        # (i, j) entries sorted row-major, destination order (j, i).
        entries = [(0, 1), (0, 2), (1, 0), (1, 2), (2, 1)]
        reference = OrderedList(2, key=lambda i, j: (j, i))
        bucket = LexBucketPermutation(3, which=1, in_arity=2)
        for e in entries:
            reference.insert(*e)
            bucket.insert(*e)
        for e in entries:
            assert bucket.lookup(*e) == reference.lookup(*e)

    def test_fill_resets_after_full_pass(self):
        entries = [(0, 1), (1, 0)]
        bucket = LexBucketPermutation(2, which=1, in_arity=2)
        for e in entries:
            bucket.insert(*e)
        first_pass = [bucket.lookup(*e) for e in entries]
        second_pass = [bucket.lookup(*e) for e in entries]
        assert first_pass == second_pass

    def test_len(self):
        bucket = LexBucketPermutation(4, which=0, in_arity=1)
        bucket.insert(2)
        bucket.insert(0)
        assert len(bucket) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            LexBucketPermutation(0, which=0, in_arity=1)
        with pytest.raises(ValueError):
            LexBucketPermutation(4, which=2, in_arity=2)


class TestOrderedSet:
    def test_sorted_unique(self):
        s = OrderedSet()
        for v in (3, -1, 3, 0, -1):
            s.insert(v)
        assert s.to_list() == [-1, 0, 3]
        assert len(s) == 3

    def test_indexing_and_contains(self):
        s = OrderedSet()
        s.insert(5)
        s.insert(2)
        assert s[0] == 2
        assert 5 in s and 3 not in s

    def test_index_of(self):
        s = OrderedSet()
        for v in (4, 1, 9):
            s.insert(v)
        assert s.index_of(4) == 1
        with pytest.raises(KeyError):
            s.index_of(7)

    def test_iteration(self):
        s = OrderedSet()
        for v in (2, 1):
            s.insert(v)
        assert list(s) == [1, 2]


class TestBsearch:
    def test_found(self):
        assert bsearch([1, 3, 5, 7], 5) == 2
        assert bsearch([1, 3, 5, 7], 1) == 0
        assert bsearch([1, 3, 5, 7], 7) == 3

    def test_absent(self):
        assert bsearch([1, 3, 5, 7], 4) == -1
        assert bsearch([], 4) == -1

    def test_works_on_ordered_set(self):
        s = OrderedSet()
        for v in (-3, 0, 4):
            s.insert(v)
        assert bsearch(s, 0) == 1


class TestExecutor:
    def test_compile_and_run(self):
        src = "def f(a):\n    return {'b': [x * 2 for x in a]}\n"
        fn = compile_inspector("f", src)
        assert fn([1, 2])["b"] == [2, 4]

    def test_namespace_provides_helpers(self):
        src = (
            "def f():\n"
            "    return {'m': MORTON(1, 1), 'b': BSEARCH([1, 2, 3], 2)}\n"
        )
        fn = compile_inspector("f", src)
        out = fn()
        assert out == {"m": 3, "b": 1}

    def test_syntax_error_reported(self):
        with pytest.raises(ValueError):
            compile_inspector("f", "def f(:\n    pass")

    def test_missing_function_rejected(self):
        with pytest.raises(ValueError):
            compile_inspector("g", "def f():\n    pass")


class TestTensors3D:
    def test_check_and_dict(self):
        t = COOTensor3D((2, 2, 2), [0, 1], [1, 0], [0, 1], [1.0, 2.0])
        t.check()
        assert t.to_dict() == {(0, 1, 0): 1.0, (1, 0, 1): 2.0}

    def test_check_rejects_duplicates(self):
        t = COOTensor3D((2, 2, 2), [0, 0], [1, 1], [0, 0], [1.0, 2.0])
        with pytest.raises(ValueError):
            t.check()

    def test_sorted_lexicographic(self):
        t = COOTensor3D((2, 2, 2), [1, 0], [0, 1], [0, 1], [1.0, 2.0])
        s = t.sorted_lexicographic()
        assert s.row == [0, 1]
        assert s.to_dict() == t.to_dict()

    def test_morton_from_coo(self):
        t = COOTensor3D((4, 4, 4), [3, 0], [3, 0], [3, 1], [1.0, 2.0])
        m = MortonCOOTensor3D.from_coo(t)
        m.check()
        assert m.to_dict() == t.to_dict()
        assert m.row[0] == 0  # (0,0,1) has the smaller Morton key
