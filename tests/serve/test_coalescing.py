"""Request coalescing: one synthesis serves every concurrent waiter."""

import threading
import time

import pytest

from repro.runtime import COOMatrix
from repro.serve import ConversionServer, ServeClient
from repro.synthesis import cache as cache_mod
from repro.synthesis import clear_memo
from repro._prof import PROF


@pytest.fixture
def cold_cache(tmp_path, monkeypatch):
    """A cold synthesis world: fresh disk cache, empty memo."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_CACHE_DISABLE", raising=False)
    clear_memo()
    yield
    clear_memo()


def _coo(n=6):
    cells = sorted({(i, (i * 3 + k) % n) for i in range(n) for k in (0, 1)})
    return COOMatrix(
        n, n,
        [i for i, _ in cells],
        [j for _, j in cells],
        [float(i + j + 1) for i, j in cells],
    )


def test_concurrent_duplicate_requests_coalesce(cold_cache, monkeypatch):
    # Slow the (single) synthesis down so every concurrent request for
    # the same fingerprint queues behind the in-flight lock instead of
    # racing its own synthesis.
    calls = []
    real = cache_mod._raw_synthesize

    def slow_synthesize(*args, **kwargs):
        calls.append(1)
        time.sleep(0.4)
        return real(*args, **kwargs)

    monkeypatch.setattr(cache_mod, "_raw_synthesize", slow_synthesize)

    server = ConversionServer(port=0, workers=8).start_in_background()
    try:
        client = ServeClient(server.address)
        coalesced_before = PROF.counters.get("cache.coalesced", 0)
        n = 6
        barrier = threading.Barrier(n)
        responses = [None] * n
        errors = []

        def worker(slot):
            try:
                barrier.wait()
                responses[slot] = client.convert(_coo(), "CSR")
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(slot,)) for slot in range(n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert not errors
        assert all(r["ok"] for r in responses)
        # The acceptance bar: >= 2 waiters served per synthesis.
        assert len(calls) == 1, f"{len(calls)} syntheses for one fingerprint"
        coalesced = PROF.counters.get("cache.coalesced", 0) - coalesced_before
        assert coalesced >= 2, f"only {coalesced} coalesced waiters"

        # The coalescing counter is scrapeable from the live endpoint.
        samples = client.metrics()
        assert samples[("repro_cache_coalesced_total", ())] >= coalesced
    finally:
        server.shutdown()


def test_distinct_fingerprints_not_serialized(cold_cache):
    # Different (src, dst) fingerprints take different locks; mixed
    # traffic must not queue behind one synthesis.
    server = ConversionServer(port=0, workers=4).start_in_background()
    try:
        client = ServeClient(server.address)
        results = {}

        def worker(dst):
            results[dst] = client.convert(_coo(), dst)

        threads = [
            threading.Thread(target=worker, args=(dst,))
            for dst in ("CSR", "CSC", "MCOO")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(r["ok"] for r in results.values())
    finally:
        server.shutdown()
