"""The repro-serve/1 wire schema: parsing, validation, serialization."""

import pytest

from repro.runtime import COOMatrix
from repro.serve import (
    ProtocolError,
    parse_convert_request,
    parse_matrix,
    serialize_container,
)


def _matrix_doc():
    return {
        "rows": 3,
        "cols": 3,
        "row": [0, 0, 1, 2],
        "col": [0, 2, 1, 2],
        "val": [1.0, 2.0, 3.0, 4.0],
    }


class TestParseMatrix:
    def test_round_trip(self):
        coo = parse_matrix(_matrix_doc())
        assert isinstance(coo, COOMatrix)
        assert coo.nrows == 3 and coo.nnz == 4

    def test_missing_fields(self):
        with pytest.raises(ProtocolError, match="missing"):
            parse_matrix({"rows": 2, "cols": 2})

    def test_length_mismatch(self):
        doc = _matrix_doc()
        doc["val"] = doc["val"][:-1]
        with pytest.raises(ProtocolError, match="lengths differ"):
            parse_matrix(doc)

    def test_non_integer_shape(self):
        doc = _matrix_doc()
        doc["rows"] = "three"
        with pytest.raises(ProtocolError, match="integers"):
            parse_matrix(doc)


class TestParseConvertRequest:
    def test_defaults(self):
        req = parse_convert_request({"dst": "csr", "matrix": _matrix_doc()})
        assert req["dst"] == "CSR"
        assert req["validate"] == "inputs"
        assert req["optimize"] is True
        assert req["plan"] is False
        assert req["assume_sorted"] is None

    def test_unknown_fields_rejected(self):
        with pytest.raises(ProtocolError, match="unknown request fields"):
            parse_convert_request(
                {"dst": "CSR", "matrix": _matrix_doc(), "bakend": "numpy"}
            )

    def test_missing_dst(self):
        with pytest.raises(ProtocolError, match="dst"):
            parse_convert_request({"matrix": _matrix_doc()})

    def test_bad_validate_level(self):
        with pytest.raises(ProtocolError, match="validate"):
            parse_convert_request(
                {"dst": "CSR", "matrix": _matrix_doc(), "validate": "maybe"}
            )


class TestSerializeContainer:
    def test_csr_arrays_and_shape(self):
        from repro import convert

        coo = parse_matrix(_matrix_doc())
        csr = convert(coo, "CSR")
        doc = serialize_container(csr, "CSR")
        assert doc["arrays"]["rowptr"] == [0, 2, 3, 4]
        assert doc["arrays"]["col2"] == [0, 2, 1, 2]
        assert doc["shape"]["NR"] == 3
        assert doc["format"] == "CSR"

    def test_numpy_arrays_become_lists(self):
        from repro import convert

        coo = parse_matrix(_matrix_doc())
        csr = convert(coo, "CSR", backend="numpy")
        doc = serialize_container(csr, "CSR")
        assert type(doc["arrays"]["rowptr"]) is list
        import json

        json.dumps(doc)  # the whole document must be JSON-compatible
