"""The daemon end to end: conversions, errors, metrics, sockets."""

import threading

import pytest

from repro import convert, dense_equal
from repro.runtime import COOMatrix
from repro.serve import ConversionServer, ServeClient, ServeError


@pytest.fixture
def server():
    srv = ConversionServer(port=0, workers=4).start_in_background()
    yield srv
    srv.shutdown()


@pytest.fixture
def client(server):
    return ServeClient(server.address)


def _coo(seed=0, n=8):
    import random

    rng = random.Random(seed)
    cells = sorted(rng.sample([(i, j) for i in range(n) for j in range(n)],
                              n * 2))
    return COOMatrix(
        n, n,
        [i for i, _ in cells],
        [j for _, j in cells],
        [float(rng.randint(1, 9)) for _ in cells],
    )


class TestConvertEndpoint:
    def test_matches_direct_convert(self, client):
        coo = _coo()
        resp = client.convert(coo, "CSR")
        assert resp["ok"] and resp["schema"] == "repro-serve/1"
        direct = convert(coo, "CSR")
        assert resp["result"]["arrays"]["rowptr"] == direct.rowptr
        assert resp["result"]["arrays"]["col2"] == direct.col
        assert resp["result"]["arrays"]["Asrc"] == direct.val
        assert resp["meta"]["seconds"] >= 0

    def test_planned_route(self, client):
        coo = _coo(3)
        resp = client.convert(coo, "DIA", plan=True)
        dia_arrays = resp["result"]["arrays"]
        direct = convert(coo, "DIA")
        assert dia_arrays["off"] == list(direct.off)

    def test_concurrent_mixed_pairs(self, client):
        # Sustained mixed-format traffic: every response must equal its
        # own direct conversion, under real thread concurrency.
        pairs = ["CSR", "CSC", "DIA", "MCOO"] * 3
        matrices = [_coo(seed) for seed in range(len(pairs))]
        results = [None] * len(pairs)
        errors = []

        def worker(slot):
            try:
                results[slot] = client.convert(matrices[slot], pairs[slot])
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(slot,))
            for slot in range(len(pairs))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        from repro.serve import serialize_container

        for matrix, dst, resp in zip(matrices, pairs, results):
            assert resp["ok"], resp
            expected = serialize_container(convert(matrix, dst), dst)
            assert resp["result"]["arrays"] == expected["arrays"]

    def test_validation_rejection_is_400(self, client):
        bad = {"rows": 2, "cols": 2, "row": [0, 0], "col": [0, 0],
               "val": [1.0, 2.0]}  # duplicate coordinate
        with pytest.raises(ServeError) as err:
            client.convert(bad, "CSR")
        assert err.value.status == 400
        assert "Duplicate" in err.value.body["error"]["type"]

    def test_unsynthesizable_pair_is_422(self, client):
        with pytest.raises(ServeError) as err:
            client.convert(_coo(), "ELL")  # no direct COO->ELL synthesis
        assert err.value.status == 422
        assert err.value.body["error"]["type"] == "SynthesisError"

    def test_unknown_format_is_400(self, client):
        with pytest.raises(ServeError) as err:
            client.convert(_coo(), "NOPE")
        assert err.value.status == 400

    def test_malformed_json_is_400(self, server):
        import http.client

        host, port = server.address
        conn = http.client.HTTPConnection(host, port, timeout=30)
        conn.request("POST", "/convert", body=b"{not json",
                     headers={"Content-Type": "application/json"})
        resp = conn.getresponse()
        assert resp.status == 400
        conn.close()

    def test_unknown_route_404_and_bad_method_405(self, server):
        import http.client

        host, port = server.address
        for method, path, expected in (
            ("GET", "/nope", 404),
            ("GET", "/convert", 405),
        ):
            conn = http.client.HTTPConnection(host, port, timeout=30)
            conn.request(method, path)
            assert conn.getresponse().status == expected
            conn.close()


class TestOpsEndpoints:
    def test_health(self, client, server):
        health = client.health()
        assert health["ok"] and health["workers"] == server.workers

    def test_metrics_scrape_parses_and_has_latency(self, client):
        client.convert(_coo(), "CSR")
        samples = client.metrics()  # raises if not valid exposition text
        names = {name for name, _ in samples}
        assert "repro_serve_request_seconds_count" in names
        assert "repro_serve_requests" in names

    def test_stats_snapshot(self, client):
        snapshot = client.stats()
        assert "cache" in snapshot and "prof" in snapshot


class TestLoadShedding:
    def test_zero_capacity_sheds_with_503(self):
        server = ConversionServer(
            port=0, workers=1, backlog=-1
        ).start_in_background()
        try:
            client = ServeClient(server.address)
            with pytest.raises(ServeError) as err:
                client.convert(_coo(), "CSR")
            assert err.value.status == 503
        finally:
            server.shutdown()


class TestUnixSocket:
    def test_round_trip_over_unix_socket(self, tmp_path):
        path = str(tmp_path / "repro.sock")
        server = ConversionServer(
            unix_path=path, workers=2
        ).start_in_background()
        try:
            client = ServeClient(path)
            assert client.health()["ok"]
            resp = client.convert(_coo(), "CSR")
            assert resp["ok"]
        finally:
            server.shutdown()
        import os

        assert not os.path.exists(path)  # socket cleaned up on stop
