"""Request-scoped tracing through the daemon: ids, recorder, debug API."""

import http.client
import json
import threading

import pytest

import repro.obs as obs
from repro.runtime import COOMatrix
from repro.serve import (
    ConversionServer,
    ServeClient,
    ServeError,
    coo_payload,
    parse_address,
)


@pytest.fixture
def server():
    # slow_ms high enough that nothing classifies as "slow" — retention
    # behavior under test is the error path, not timing noise.
    srv = ConversionServer(
        port=0, workers=4, slow_ms=60_000.0
    ).start_in_background()
    yield srv
    srv.shutdown()


@pytest.fixture
def client(server):
    return ServeClient(server.address)


def _coo(seed=0, n=8):
    import random

    rng = random.Random(seed)
    cells = sorted(rng.sample([(i, j) for i in range(n) for j in range(n)],
                              n * 2))
    return COOMatrix(
        n, n,
        [i for i, _ in cells],
        [j for _, j in cells],
        [float(rng.randint(1, 9)) for _ in cells],
    )


def _raw_convert(server, doc, headers=None):
    host, port = server.address
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        conn.request(
            "POST", "/convert", body=json.dumps(doc).encode(),
            headers={"Connection": "close", **(headers or {})},
        )
        resp = conn.getresponse()
        return resp.status, dict(resp.getheaders()), json.loads(resp.read())
    finally:
        conn.close()


def _walk(node):
    yield node
    for child in node.get("children", ()):
        yield from _walk(child)


class TestTraceIds:
    def test_every_response_carries_the_id_in_body_and_header(self, server):
        status, headers, body = _raw_convert(
            server, {"dst": "CSR", "matrix": coo_payload(_coo())}
        )
        assert status == 200
        trace_id = headers["X-Repro-Trace-Id"]
        assert obs.valid_trace_id(trace_id)
        assert body["trace_id"] == trace_id
        assert body["meta"]["trace_id"] == trace_id

    def test_client_supplied_json_field_round_trips(self, client):
        resp = client.convert(_coo(1), "CSR", trace_id="my.custom-id_1")
        assert resp["trace_id"] == "my.custom-id_1"

    def test_header_supplied_id_is_adopted(self, server):
        status, headers, body = _raw_convert(
            server,
            {"dst": "CSR", "matrix": coo_payload(_coo(2))},
            headers={"X-Repro-Trace-Id": "hdr-id-42"},
        )
        assert status == 200
        assert headers["X-Repro-Trace-Id"] == "hdr-id-42"
        assert body["trace_id"] == "hdr-id-42"

    def test_json_field_wins_over_the_header(self, server):
        _status, headers, _body = _raw_convert(
            server,
            {"dst": "CSR", "matrix": coo_payload(_coo(3)),
             "trace_id": "from-doc"},
            headers={"X-Repro-Trace-Id": "from-header"},
        )
        assert headers["X-Repro-Trace-Id"] == "from-doc"

    def test_invalid_header_id_is_silently_replaced(self, server):
        status, headers, _body = _raw_convert(
            server,
            {"dst": "CSR", "matrix": coo_payload(_coo(4))},
            headers={"X-Repro-Trace-Id": "bad id !!"},
        )
        assert status == 200
        fresh = headers["X-Repro-Trace-Id"]
        assert fresh != "bad id !!" and obs.valid_trace_id(fresh)

    def test_invalid_json_field_is_a_400(self, client):
        with pytest.raises(ServeError) as err:
            client.convert(_coo(), "CSR", trace_id="bad id !!")
        assert err.value.status == 400
        assert "trace_id" in err.value.body["error"]["message"]

    def test_error_responses_carry_a_trace_id_too(self, client):
        with pytest.raises(ServeError) as err:
            client.convert(_coo(), "NOPE")
        assert err.value.status == 400
        assert obs.valid_trace_id(err.value.body["trace_id"])


class TestDebugEndpoints:
    def test_trace_tree_has_pipeline_spans_under_serve_request(self, client):
        trace_id = client.convert(_coo(5), "CSC")["trace_id"]
        doc = client.debug_trace(trace_id)
        root = doc["root"]
        assert root["name"] == "serve.request"
        assert root["trace_id"] == trace_id
        names = [n["name"] for n in _walk(root)]
        for expected in ("serve.queue_wait", "convert", "cache.lookup",
                         "execute"):
            assert expected in names, names
        # Every span in the tree belongs to this trace, attributed to a
        # named thread.
        for node in _walk(root):
            assert node["trace_id"] == trace_id
        workers = {n["thread"] for n in _walk(root["children"][0])}
        assert any(t.startswith("repro-serve-") for t in workers)

    def test_trace_tree_as_chrome_trace_validates(self, client):
        trace_id = client.convert(_coo(6), "CSR")["trace_id"]
        chrome = client.debug_trace(trace_id, format="chrome")
        assert obs.validate_chrome_trace(chrome) == []
        metadata = [e for e in chrome["traceEvents"] if e["ph"] == "M"]
        assert any(
            e["args"]["name"].startswith("repro-serve-") for e in metadata
        )

    def test_requests_table_rows(self, client):
        trace_id = client.convert(_coo(7), "DIA")["trace_id"]
        table = client.debug_requests()
        rows = {row["trace_id"]: row for row in table["requests"]}
        row = rows[trace_id]
        assert row["status"] == 200
        assert row["dst"] == "DIA" and "->" in row["pair"]
        assert row["backend"] == "python"
        assert row["cache"]  # hit / miss / memo_hit / coalesced / ...
        assert row["seconds"] > 0
        assert row["traced"] is True
        assert table["recorder"]["capacity"] > 0

    def test_limit_parameter(self, client):
        for seed in range(3):
            client.convert(_coo(seed), "CSR")
        assert len(client.debug_requests(limit=2)["requests"]) == 2

    def test_slowlog_retains_errors(self, client):
        with pytest.raises(ServeError) as err:
            client.convert(_coo(), "NOPE")
        trace_id = err.value.body["trace_id"]
        slowlog = client.slowlog()
        rows = {row["trace_id"]: row for row in slowlog["requests"]}
        assert rows[trace_id]["reason"] == "error"
        assert rows[trace_id]["status"] == 400

    def test_unknown_trace_id_is_404(self, client):
        with pytest.raises(ServeError) as err:
            client.debug_trace("never-seen")
        assert err.value.status == 404

    def test_no_record_disables_the_debug_endpoints(self):
        server = ConversionServer(
            port=0, workers=2, record=False
        ).start_in_background()
        try:
            client = ServeClient(server.address)
            # Conversions still work and still carry trace ids.
            resp = client.convert(_coo(), "CSR")
            assert obs.valid_trace_id(resp["trace_id"])
            for call in (client.debug_requests, client.slowlog):
                with pytest.raises(ServeError) as err:
                    call()
                assert err.value.status == 404
            assert client.health()["record"] is False
        finally:
            server.shutdown()


class TestConcurrentTracing:
    def test_sixteen_mixed_pair_threads_get_private_complete_trees(
        self, client
    ):
        pairs = ["CSR", "CSC", "DIA", "MCOO"] * 4
        matrices = [_coo(seed) for seed in range(len(pairs))]
        results = [None] * len(pairs)
        errors = []

        def worker(slot):
            try:
                results[slot] = client.convert(matrices[slot], pairs[slot])
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(slot,))
            for slot in range(len(pairs))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for dst, resp in zip(pairs, results):
            trace_id = resp["trace_id"]
            assert obs.valid_trace_id(trace_id)
            root = client.debug_trace(trace_id)["root"]
            nodes = list(_walk(root))
            names = [n["name"] for n in nodes]
            # A complete, private tree: the request's own pipeline spans,
            # every one of them tagged with this request's trace id.
            assert root["name"] == "serve.request"
            assert root["attrs"]["dst"] == dst
            assert names.count("convert") == 1
            assert "cache.lookup" in names
            assert "execute" in names
            assert {n["trace_id"] for n in nodes} == {trace_id}


class TestExemplars:
    def test_latency_buckets_link_to_recorded_trace_ids(self, client):
        trace_id = client.convert(_coo(8), "CSR")["trace_id"]
        exemplars = client.metrics_exemplars()
        convert_buckets = {
            key: ex
            for key, ex in exemplars.items()
            if key[0] == "repro_serve_request_seconds_bucket"
            and ("endpoint", "/convert") in key[1]
        }
        assert convert_buckets
        linked = {ex["labels"]["trace_id"] for ex in convert_buckets.values()}
        assert trace_id in linked
        # The exemplar's trace id resolves through the flight recorder.
        assert client.debug_trace(trace_id)["trace_id"] == trace_id


class TestAccessLog:
    def test_one_enriched_json_line_per_request(self, tmp_path):
        log_path = tmp_path / "access.jsonl"
        server = ConversionServer(
            port=0, workers=2, access_log=str(log_path)
        ).start_in_background()
        try:
            client = ServeClient(server.address)
            trace_id = client.convert(_coo(), "CSR")["trace_id"]
            client.health()
        finally:
            server.shutdown()
        lines = [
            json.loads(line)
            for line in log_path.read_text().splitlines()
        ]
        assert len(lines) == 2
        convert_line, health_line = lines
        assert convert_line["path"] == "/convert"
        assert convert_line["status"] == 200
        assert convert_line["trace_id"] == trace_id
        assert convert_line["seconds"] > 0
        assert "->" in convert_line["pair"]
        assert convert_line["backend"] == "python"
        assert health_line["path"] == "/healthz"
        assert health_line["trace_id"] == ""


class TestProcessHygiene:
    def test_served_requests_do_not_pollute_process_roots(self, client):
        before = len(obs.TRACER.finished_roots())
        client.convert(_coo(9), "CSR")
        roots = obs.TRACER.finished_roots()
        assert len(roots) == before or all(
            r.name != "serve.request" for r in roots[before:]
        )


class TestParseAddress:
    def test_host_port(self):
        assert parse_address("127.0.0.1:8757") == ("127.0.0.1", 8757)
        assert parse_address("[::1]:80") == ("[::1]", 80)

    def test_unix_paths(self):
        assert parse_address("/tmp/repro.sock") == "/tmp/repro.sock"
        assert parse_address("./repro.sock") == "./repro.sock"

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_address("no-port-here")
        with pytest.raises(ValueError):
            parse_address("host:notaport")
