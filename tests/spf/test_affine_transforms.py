"""Tests for the user-directed affine transformations."""

import pytest

from repro.spf import Computation
from repro.spf.transforms import (
    TransformError,
    apply_all_fusion,
    full_unroll,
    interchange,
    shift,
    skew,
    tile,
)


def run(comp, env):
    local = dict(env)
    exec(comp.codegen(), {}, local)
    return local


def points(comp, env):
    out = run(comp, {**env, "out": []})
    return out["out"]


class TestInterchange:
    def test_order_changes_coverage_does_not(self):
        comp = Computation()
        s = comp.new_stmt("out.append((i, j))",
                          "{[i,j] : 0 <= i < 3 && 0 <= j < 2}")
        before = points(comp, {})
        interchange(comp, s.name, "i", "j")
        after = points(comp, {})
        assert sorted(before) == sorted(after)
        assert before != after  # column-major now

    def test_code_shape(self):
        comp = Computation()
        s = comp.new_stmt("f(i, j)", "{[i,j] : 0 <= i < M && 0 <= j < N}")
        interchange(comp, s.name, "i", "j")
        code = comp.codegen()
        assert code.index("for j") < code.index("for i")

    def test_triangular_interchange_rejected(self):
        # j's bound depends on i: interchanging breaks scannability.
        comp = Computation()
        s = comp.new_stmt("f(i, j)", "{[i,j] : 0 <= i < N && 0 <= j <= i}")
        with pytest.raises(TransformError):
            interchange(comp, s.name, "i", "j")

    def test_unknown_statement(self):
        comp = Computation()
        comp.new_stmt("f(i)", "{[i] : 0 <= i < N}")
        with pytest.raises(TransformError):
            interchange(comp, "nope", "i", "i")

    def test_unknown_var(self):
        comp = Computation()
        s = comp.new_stmt("f(i)", "{[i] : 0 <= i < N}")
        with pytest.raises(TransformError):
            interchange(comp, s.name, "i", "q")


class TestShift:
    def test_semantics_preserved(self):
        comp = Computation()
        s = comp.new_stmt("out.append(i * i)", "{[i] : 0 <= i < 5}")
        shift(comp, s.name, "i", 7)
        assert points(comp, {}) == [i * i for i in range(5)]

    def test_loop_range_moved(self):
        comp = Computation()
        s = comp.new_stmt("out.append(i)", "{[i] : 0 <= i < 4}")
        shift(comp, s.name, "i", 10)
        assert "range(10, 14)" in comp.codegen()

    def test_negative_shift(self):
        comp = Computation()
        s = comp.new_stmt("out.append(i)", "{[i] : 5 <= i < 9}")
        shift(comp, s.name, "i", -5)
        assert "range(0, 4)" in comp.codegen()
        assert points(comp, {}) == [5, 6, 7, 8]


class TestSkew:
    def test_semantics_preserved(self):
        comp = Computation()
        s = comp.new_stmt("out.append((i, j))",
                          "{[i,j] : 0 <= i < 4 && 0 <= j < 4}")
        skew(comp, s.name, "j", "i", 2)
        expected = sorted((i, j) for i in range(4) for j in range(4))
        assert sorted(points(comp, {})) == expected

    def test_inner_must_be_inner(self):
        comp = Computation()
        s = comp.new_stmt("f(i, j)", "{[i,j] : 0 <= i < N && 0 <= j < N}")
        with pytest.raises(TransformError):
            skew(comp, s.name, "i", "j", 1)


class TestTile:
    def test_exact_coverage_with_partial_tiles(self):
        comp = Computation()
        s = comp.new_stmt("out.append(i)", "{[i] : 0 <= i < N}")
        tile(comp, s.name, "i", 4)
        for n in (1, 4, 7, 16, 17):
            assert points(comp, {"N": n}) == list(range(n))

    def test_two_loops_emitted(self):
        comp = Computation()
        s = comp.new_stmt("out.append(i)", "{[i] : 0 <= i < N}")
        tile(comp, s.name, "i", 8)
        code = comp.codegen()
        assert "for i_t in" in code
        assert "for i_i in" in code
        assert "// 8" in code

    def test_tile_inner_of_nest(self):
        comp = Computation()
        s = comp.new_stmt("out.append((i, j))",
                          "{[i,j] : 0 <= i < 3 && 0 <= j < N}")
        tile(comp, s.name, "j", 2)
        expected = sorted((i, j) for i in range(3) for j in range(5))
        assert sorted(points(comp, {"N": 5})) == expected

    def test_size_validation(self):
        comp = Computation()
        s = comp.new_stmt("f(i)", "{[i] : 0 <= i < N}")
        with pytest.raises(TransformError):
            tile(comp, s.name, "i", 1)

    def test_nonzero_lower_bound_rejected(self):
        comp = Computation()
        s = comp.new_stmt("f(i)", "{[i] : 3 <= i < N}")
        with pytest.raises(TransformError):
            tile(comp, s.name, "i", 4)


class TestFullUnroll:
    def test_replicates_body(self):
        comp = Computation()
        s = comp.new_stmt("out.append((i, k))",
                          "{[i,k] : 0 <= i < N && 0 <= k < 3}")
        replacements = full_unroll(comp, s.name, "k")
        assert len(replacements) == 3
        got = points(comp, {"N": 2})
        assert sorted(got) == sorted((i, k) for i in range(2) for k in range(3))

    def test_unrolled_loops_refusable(self):
        comp = Computation()
        s = comp.new_stmt("out.append(k)", "{[k] : 0 <= k < 4}")
        full_unroll(comp, s.name, "k")
        assert "for " not in comp.codegen()
        assert points(comp, {}) == [0, 1, 2, 3]

    def test_unroll_then_fuse(self):
        comp = Computation()
        s = comp.new_stmt("out.append((i, k))",
                          "{[i,k] : 0 <= i < N && 0 <= k < 2}")
        full_unroll(comp, s.name, "k")
        fused = apply_all_fusion(comp)
        assert fused == 1
        assert comp.codegen().count("for ") == 1

    def test_symbolic_bound_rejected(self):
        comp = Computation()
        s = comp.new_stmt("f(k)", "{[k] : 0 <= k < N}")
        with pytest.raises(TransformError):
            full_unroll(comp, s.name, "k")

    def test_huge_trip_count_refused(self):
        comp = Computation()
        s = comp.new_stmt("f(k)", "{[k] : 0 <= k < 5000}")
        with pytest.raises(TransformError):
            full_unroll(comp, s.name, "k")


class TestComposition:
    def test_tile_then_interchange_tiles(self):
        comp = Computation()
        s = comp.new_stmt(
            "out.append((i, j))", "{[i,j] : 0 <= i < 8 && 0 <= j < 8}"
        )
        tile(comp, s.name, "j", 4)
        # Hoist the tile loop over the i loop (classic tiling step).
        interchange(comp, s.name, "i", "j_t")
        got = points(comp, {})
        assert sorted(got) == sorted((i, j) for i in range(8) for j in range(8))
        code = comp.codegen()
        assert code.index("for j_t") < code.index("for i")
