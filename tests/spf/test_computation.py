"""Unit tests for the SPF-IR: schedules, statements, lowering, printing."""

import pytest

from repro.ir import parse_set
from repro.spf import Computation, LoweringError, Schedule, Stmt


class TestSchedule:
    def test_default_shape(self):
        s = Schedule.default(3, ["i", "j"])
        assert s.entries == (3, "i", 0, "j", 0)
        assert s.depth == 2

    def test_static_and_loop_accessors(self):
        s = Schedule([1, "i", 2, "k", 3])
        assert s.static_at(0) == 1
        assert s.loop_var_at(0) == "i"
        assert s.static_at(1) == 2
        assert s.loop_var_at(1) == "k"
        assert s.static_at(2) == 3

    def test_with_static(self):
        s = Schedule.default(0, ["i"]).with_static(1, 7)
        assert s.entries == (0, "i", 7)

    def test_rename_loop_vars(self):
        s = Schedule([0, "i", 0]).rename_loop_vars({"i": "x"})
        assert s.loop_var_at(0) == "x"

    def test_even_length_rejected(self):
        with pytest.raises(ValueError):
            Schedule([0, "i"])

    def test_wrong_types_rejected(self):
        with pytest.raises(ValueError):
            Schedule(["i", 0, "j"])
        with pytest.raises(ValueError):
            Schedule([0, 1, 2])


class TestStmt:
    def test_parses_space_string(self):
        stmt = Stmt("x = 1", "{[i] : 0 <= i < N}")
        assert stmt.space.tuple_vars == ("i",)

    def test_schedule_depth_must_match(self):
        with pytest.raises(ValueError):
            Stmt("x = 1", "{[i] : 0 <= i < N}", [0, "i", 0, "j", 0])

    def test_schedule_vars_must_match_space(self):
        with pytest.raises(ValueError):
            Stmt("x = 1", "{[i] : 0 <= i < N}", [0, "j", 0])

    def test_rename_tuple_vars_updates_text(self):
        stmt = Stmt("a[i] = b[i]", "{[i] : 0 <= i < N}", [0, "i", 0])
        renamed = stmt.rename_tuple_vars({"i": "z"})
        assert renamed.text == "a[z] = b[z]"
        assert renamed.space.tuple_vars == ("z",)
        assert renamed.schedule.loop_var_at(0) == "z"

    def test_rename_is_word_boundary(self):
        stmt = Stmt("ii = i + imax", "{[i] : 0 <= i < N}", [0, "i", 0])
        renamed = stmt.rename_tuple_vars({"i": "q"})
        assert renamed.text == "ii = q + imax"

    def test_phase_preserved_by_rename(self):
        stmt = Stmt("x = 1", "{[i] : 0 <= i < N}", phase=3)
        assert stmt.rename_tuple_vars({"i": "z"}).phase == 3


class TestLowering:
    def test_rectangular_loop(self):
        comp = Computation()
        comp.new_stmt("out.append(i)", "{[i] : 0 <= i < N}")
        code = comp.codegen()
        assert "for i in range(0, N):" in code
        assert "out.append(i)" in code

    def test_csr_walk_matches_paper(self):
        comp = Computation()
        comp.new_stmt(
            "out.append((i, j))",
            "{[i,k,j] : 0 <= i < N && rowptr(i) <= k < rowptr(i+1)"
            " && j = col(k)}",
        )
        code = comp.codegen()
        assert "for k in range(rowptr[i], rowptr[i + 1]):" in code
        assert "j = col[k]" in code

    def test_c_output(self):
        comp = Computation()
        comp.new_stmt("x[i] = i", "{[i] : 0 <= i < N}")
        code = comp.codegen(lang="c")
        assert "for (int i = 0; i <= N - 1; i++) {" in code
        assert "x[i] = i;" in code

    def test_unknown_language_rejected(self):
        comp = Computation()
        comp.new_stmt("x = 1", "{[i] : 0 <= i < 1}")
        with pytest.raises(ValueError):
            comp.codegen(lang="fortran")

    def test_zero_arity_statement(self):
        comp = Computation()
        comp.new_stmt("x = 5", "{[]}")
        assert comp.codegen().strip() == "x = 5"

    def test_statement_order_follows_insertion(self):
        comp = Computation()
        comp.new_stmt("first()", "{[]}")
        comp.new_stmt("second()", "{[]}")
        code = comp.codegen()
        assert code.index("first") < code.index("second")

    def test_missing_bound_raises(self):
        comp = Computation()
        comp.new_stmt("x = i", "{[i] : 0 <= i}")
        with pytest.raises(LoweringError):
            comp.codegen()

    def test_guard_emitted_for_residual_constraint(self):
        comp = Computation()
        comp.new_stmt(
            "out.append((i, j))",
            "{[i,j] : 0 <= i < N && 0 <= j < N && i + j = N}",
        )
        code = comp.codegen()
        assert "if (" in code

    def test_guarded_equality_on_uf(self):
        # The DIA linear-search pattern: a loop with a UF guard.
        comp = Computation()
        comp.new_stmt(
            "hit(d)",
            "{[n,d] : 0 <= n < NNZ && 0 <= d < ND && off(d) = col(n)}",
        )
        code = comp.codegen()
        assert "for d in range(0, ND):" in code
        assert "off[d] == col[n]" in code

    def test_dead_let_pruned(self):
        comp = Computation()
        comp.new_stmt(
            "use(k)",
            "{[i,k,j] : 0 <= i < N && 0 <= k < M && j = col(k)}",
        )
        code = comp.codegen()
        assert "j = col[k]" not in code

    def test_live_let_kept(self):
        comp = Computation()
        comp.new_stmt(
            "use(j)",
            "{[i,k,j] : 0 <= i < N && 0 <= k < M && j = col(k)}",
        )
        code = comp.codegen()
        assert "j = col[k]" in code

    def test_executable_output(self):
        comp = Computation()
        comp.new_stmt(
            "out.append((i, j))",
            "{[i,k,j] : 0 <= i < N && rowptr(i) <= k < rowptr(i+1)"
            " && j = col(k)}",
        )
        code = comp.codegen()
        env = {"N": 2, "rowptr": [0, 2, 3], "col": [1, 3, 0], "out": []}
        exec(code, {}, env)
        assert env["out"] == [(0, 1), (0, 3), (1, 0)]


class TestDataSpaces:
    def test_readers_and_writers_tracked(self):
        comp = Computation()
        comp.new_stmt("a[i] = 1", "{[i] : 0 <= i < N}", writes=["a"])
        comp.new_stmt("b[i] = a[i]", "{[i] : 0 <= i < N}", reads=["a"],
                      writes=["b"])
        spaces = comp.data_spaces()
        assert spaces["a"]["writers"] == ["S0"]
        assert spaces["a"]["readers"] == ["S1"]
        assert spaces["b"]["writers"] == ["S1"]


class TestFunctionWrapper:
    def test_codegen_function_runs(self):
        comp = Computation("double_all")
        comp.new_stmt("b[i] = 2 * a[i]", "{[i] : 0 <= i < N}")
        source = comp.codegen_function(
            ["a", "N"], ["b"], preamble=["b = [0] * N"]
        )
        namespace = {}
        exec(source, namespace)
        out = namespace["double_all"]([1, 2, 3], 3)
        assert out == {"b": [2, 4, 6]}
