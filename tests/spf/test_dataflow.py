"""Tests for the dataflow-graph (DOT) export."""

from repro import get_conversion
from repro.spf import Computation, dataflow_dot, dead_spaces


def sample():
    comp = Computation("demo")
    comp.new_stmt("t[i] = i", "{[i] : 0 <= i < N}", writes=["t"])
    comp.new_stmt("out[i] = t[i]", "{[i] : 0 <= i < N}",
                  reads=["t"], writes=["out"])
    comp.new_stmt("junk[i] = i", "{[i] : 0 <= i < N}", writes=["junk"])
    return comp


class TestDot:
    def test_valid_digraph(self):
        dot = dataflow_dot(sample(), live_out=["out"])
        assert dot.startswith('digraph "demo" {')
        assert dot.rstrip().endswith("}")

    def test_statement_nodes_present(self):
        dot = dataflow_dot(sample())
        for name in ("S0", "S1", "S2"):
            assert f'"{name}"' in dot

    def test_read_write_edges(self):
        dot = dataflow_dot(sample())
        assert '"S0" -> "ds_t";' in dot
        assert '"ds_t" -> "S1";' in dot
        assert '"S1" -> "ds_out";' in dot

    def test_live_out_highlighted(self):
        dot = dataflow_dot(sample(), live_out=["out"])
        assert 'fillcolor=lightgray' in dot

    def test_long_labels_truncated(self):
        comp = Computation()
        comp.new_stmt("x = " + " + ".join(["1"] * 50), "{[]}", writes=["x"])
        dot = dataflow_dot(comp, max_label=30)
        assert "..." in dot

    def test_quotes_escaped(self):
        comp = Computation()
        comp.new_stmt('s = "hi"', "{[]}", writes=["s"])
        dot = dataflow_dot(comp)
        assert '\\"hi\\"' in dot


class TestDeadSpaces:
    def test_junk_detected(self):
        assert dead_spaces(sample(), ["out"]) == {"junk"}

    def test_everything_live(self):
        assert dead_spaces(sample(), ["out", "junk"]) == set()

    def test_synthesized_conversion_has_no_dead_spaces(self):
        # Raw synthesize, not get_conversion: a conversion served from the
        # persistent inspector cache carries source only (computation=None).
        from repro import get_format
        from repro.synthesis import synthesize

        conv = synthesize(get_format("SCOO"), get_format("CSR"))
        # After DCE the remaining graph must be fully live.
        dead = dead_spaces(conv.computation, conv.returns)
        # Source arrays are inputs, not produced, so exclude them.
        produced = {
            w for s in conv.computation.stmts for w in s.writes
        }
        assert not (dead & produced)
