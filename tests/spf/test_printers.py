"""Unit tests for expression/constraint printing and the AST printers."""

import pytest

from repro.ir import Mul, Sym, UFCall, Var, equals, less, less_equal, parse_expr
from repro.spf import (
    CPrinter,
    ForLoop,
    Guard,
    LetEq,
    Program,
    PythonPrinter,
    Raw,
    Comment,
    SymbolTable,
    print_constraint,
    print_expr,
)


SYMTAB = SymbolTable(functions=["MORTON"])


class TestSymbolTable:
    def test_default_is_array(self):
        assert SymbolTable().kind_of("anything") == "array"

    def test_registered_kinds(self):
        st = SymbolTable(arrays=["rowptr"], functions=["MORTON"], objects=["P"])
        assert st.kind_of("rowptr") == "array"
        assert st.kind_of("MORTON") == "func"
        assert st.kind_of("P") == "object"

    def test_conflicting_registration_rejected(self):
        with pytest.raises(ValueError):
            SymbolTable(arrays=["f"], functions=["f"])


class TestExprPrinting:
    def test_affine(self):
        assert print_expr(parse_expr("2 * i + N - 3", ["i"]), SYMTAB) == \
            "2 * i + N - 3"

    def test_uf_as_array(self):
        e = UFCall("rowptr", [Var("i") + 1]).as_expr()
        assert print_expr(e, SYMTAB) == "rowptr[i + 1]"

    def test_uf_as_function(self):
        e = UFCall("MORTON", [Var("i"), Var("j")]).as_expr()
        assert print_expr(e, SYMTAB) == "MORTON(i, j)"

    def test_multi_arg_array_python(self):
        e = UFCall("table", [Var("i"), Var("j")]).as_expr()
        assert print_expr(e, SYMTAB, "py") == "table[i, j]"

    def test_multi_arg_array_c(self):
        e = UFCall("table", [Var("i"), Var("j")]).as_expr()
        assert print_expr(e, SYMTAB, "c") == "table[i][j]"

    def test_mul_atom(self):
        e = Mul(Sym("ND"), Var("ii")).as_expr() + Var("d")
        assert print_expr(e, SYMTAB) == "d + ND * (ii)"

    def test_constant(self):
        assert print_expr(parse_expr("0"), SYMTAB) == "0"


class TestConstraintPrinting:
    def test_negative_terms_move_right(self):
        c = less_equal(UFCall("rowptr", [Var("i")]), Var("k"))
        assert print_constraint(c, SYMTAB) == "k >= rowptr[i]"

    def test_equality(self):
        c = equals(Var("j"), UFCall("col", [Var("k")]))
        text = print_constraint(c, SYMTAB)
        assert "==" in text
        assert "j" in text and "col[k]" in text

    def test_strict_constant_offset(self):
        c = less(Var("i"), Sym("N"))  # i < N  =>  N - i - 1 >= 0
        assert print_constraint(c, SYMTAB) == "N >= i + 1"


class TestPythonPrinter:
    def test_loop_bounds_single(self):
        loop = ForLoop("i", [parse_expr("0")], [Sym("N") - 1], [Raw("f(i)")])
        text = PythonPrinter(SYMTAB).print(loop)
        assert text == "for i in range(0, N):\n    f(i)"

    def test_loop_bounds_multiple(self):
        loop = ForLoop(
            "i", [parse_expr("0"), Sym("L")], [Sym("N") - 1, Sym("M")],
            [Raw("f(i)")],
        )
        text = PythonPrinter(SYMTAB).print(loop)
        assert "range(max(0, L), min(N, M + 1))" in text

    def test_guard(self):
        guard = Guard([equals(Var("i"), Sym("N"))], [Raw("g()")])
        text = PythonPrinter(SYMTAB).print(guard)
        assert text.startswith("if (i == N):")

    def test_empty_body_pass(self):
        loop = ForLoop("i", [parse_expr("0")], [parse_expr("3")], [])
        assert PythonPrinter(SYMTAB).print(loop).endswith("pass")

    def test_let_and_comment(self):
        prog = Program([Comment("phase 1"), LetEq("j", Var("i") + 1)])
        text = PythonPrinter(SYMTAB).print(prog)
        assert "# phase 1" in text
        assert "j = i + 1" in text

    def test_multiline_raw_indented(self):
        loop = ForLoop("i", [parse_expr("0")], [parse_expr("3")],
                       [Raw("a = 1\nb = 2")])
        lines = PythonPrinter(SYMTAB).print(loop).splitlines()
        assert lines[1] == "    a = 1"
        assert lines[2] == "    b = 2"


class TestCPrinter:
    def test_loop(self):
        loop = ForLoop("i", [parse_expr("0")], [Sym("N") - 1], [Raw("f(i)")])
        text = CPrinter(SYMTAB).print(loop)
        assert "for (int i = 0; i <= N - 1; i++) {" in text
        assert "f(i);" in text
        assert text.rstrip().endswith("}")

    def test_semicolon_not_duplicated(self):
        text = CPrinter(SYMTAB).print(Raw("x = 1;"))
        assert text == "x = 1;"

    def test_nested_min_max(self):
        loop = ForLoop(
            "i", [parse_expr("0"), Sym("L")], [Sym("N"), Sym("M")], [Raw("f()")]
        )
        text = CPrinter(SYMTAB).print(loop)
        assert "max(0, L)" in text
        assert "min(N, M)" in text

    def test_guard_uses_and(self):
        guard = Guard(
            [equals(Var("i"), Sym("N")), less(Var("j"), Sym("M"))],
            [Raw("g()")],
        )
        text = CPrinter(SYMTAB).print(guard)
        assert "&&" in text


class TestForLoopValidation:
    def test_needs_bounds(self):
        with pytest.raises(ValueError):
            ForLoop("i", [], [parse_expr("3")])
        with pytest.raises(ValueError):
            ForLoop("i", [parse_expr("0")], [])

    def test_guard_needs_constraints(self):
        with pytest.raises(ValueError):
            Guard([], [Raw("x")])

    def test_header_key_ignores_bound_order(self):
        a = ForLoop("i", [parse_expr("0"), Sym("L")], [Sym("N")])
        b = ForLoop("i", [Sym("L"), parse_expr("0")], [Sym("N")])
        assert a.header_key() == b.header_key()
