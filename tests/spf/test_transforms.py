"""Unit tests for the SPF transformations: dedup, DCE, fusion."""

import pytest

from repro.spf import Computation, Stmt
from repro.spf.transforms import (
    apply_all_fusion,
    dead_code_elimination,
    eliminate_redundant_statements,
    fusable_depth,
    fuse,
)


def make(text, space, reads=(), writes=(), phase=0):
    return Stmt(text, space, None, reads, writes, phase=phase)


class TestDedup:
    def test_exact_duplicates_removed(self):
        comp = Computation()
        comp.new_stmt("a[i] = i", "{[i] : 0 <= i < N}", writes=["a"])
        comp.new_stmt("a[i] = i", "{[i] : 0 <= i < N}", writes=["a"])
        removed = eliminate_redundant_statements(comp)
        assert len(removed) == 1
        assert len(comp.stmts) == 1

    def test_duplicates_modulo_tuple_names(self):
        comp = Computation()
        comp.new_stmt("a[i] = i", "{[i] : 0 <= i < N}", writes=["a"])
        comp.new_stmt("a[x] = x", "{[x] : 0 <= x < N}", writes=["a"])
        removed = eliminate_redundant_statements(comp)
        assert len(removed) == 1

    def test_different_statements_kept(self):
        comp = Computation()
        comp.new_stmt("a[i] = i", "{[i] : 0 <= i < N}", writes=["a"])
        comp.new_stmt("a[i] = i + 1", "{[i] : 0 <= i < N}", writes=["a"])
        assert eliminate_redundant_statements(comp) == []
        assert len(comp.stmts) == 2

    def test_different_spaces_kept(self):
        comp = Computation()
        comp.new_stmt("a[i] = i", "{[i] : 0 <= i < N}", writes=["a"])
        comp.new_stmt("a[i] = i", "{[i] : 0 <= i < M}", writes=["a"])
        assert eliminate_redundant_statements(comp) == []


class TestDCE:
    def test_removes_unread_writer(self):
        comp = Computation()
        comp.new_stmt("p[i] = i", "{[i] : 0 <= i < N}", writes=["p"])
        comp.new_stmt("out[i] = i", "{[i] : 0 <= i < N}", writes=["out"])
        removed = dead_code_elimination(comp, live_out=["out"])
        assert [s.writes for s in removed] == [("p",)]
        assert len(comp.stmts) == 1

    def test_keeps_transitive_producers(self):
        comp = Computation()
        comp.new_stmt("t[i] = i", "{[i] : 0 <= i < N}", writes=["t"])
        comp.new_stmt("out[i] = t[i]", "{[i] : 0 <= i < N}",
                      reads=["t"], writes=["out"])
        removed = dead_code_elimination(comp, live_out=["out"])
        assert removed == []
        assert len(comp.stmts) == 2

    def test_permutation_elimination_scenario(self):
        # The paper's P removal: an OrderedList populated but never read.
        comp = Computation()
        comp.new_stmt("P.insert(i)", "{[i] : 0 <= i < N}", writes=["P"])
        comp.new_stmt("col2[i] = col1[i]", "{[i] : 0 <= i < N}",
                      reads=["col1"], writes=["col2"])
        removed = dead_code_elimination(comp, live_out=["col2"])
        assert any("P" in s.writes for s in removed)

    def test_later_reader_does_not_keep_earlier_writer_of_dead_space(self):
        comp = Computation()
        comp.new_stmt("dead[i] = i", "{[i] : 0 <= i < N}", writes=["dead"])
        comp.new_stmt("x[i] = dead[i]", "{[i] : 0 <= i < N}",
                      reads=["dead"], writes=["x"])
        # x itself is dead, so both go.
        removed = dead_code_elimination(comp, live_out=["unrelated"])
        assert len(removed) == 2


class TestFusableDepth:
    def test_identical_loops_fully_fusable(self):
        a = make("x[i] = i", "{[i] : 0 <= i < N}")
        b = make("y[i] = i", "{[i] : 0 <= i < N}")
        comp = Computation()
        comp.add_stmt(a)
        comp.add_stmt(b)
        assert fusable_depth(comp.stmts[0], comp.stmts[1]) == 1

    def test_renamed_loops_fusable(self):
        comp = Computation()
        comp.new_stmt("x[i] = i", "{[i] : 0 <= i < N}")
        comp.new_stmt("y[q] = q", "{[q] : 0 <= q < N}")
        assert fusable_depth(comp.stmts[0], comp.stmts[1]) == 1

    def test_different_bounds_not_fusable(self):
        comp = Computation()
        comp.new_stmt("x[i] = i", "{[i] : 0 <= i < N}")
        comp.new_stmt("y[i] = i", "{[i] : 0 <= i < M}")
        assert fusable_depth(comp.stmts[0], comp.stmts[1]) == 0

    def test_phase_barrier_blocks_fusion(self):
        comp = Computation()
        comp.add_stmt(make("x[i] = i", "{[i] : 0 <= i < N}", phase=0))
        comp.add_stmt(make("y[i] = x[i]", "{[i] : 0 <= i < N}", phase=1))
        assert fusable_depth(comp.stmts[0], comp.stmts[1]) == 0

    def test_partial_prefix_depth(self):
        comp = Computation()
        comp.new_stmt("a[i] = i", "{[i,j] : 0 <= i < N && 0 <= j < M}")
        comp.new_stmt("b[i] = i", "{[i,j] : 0 <= i < N && 0 <= j < K}")
        assert fusable_depth(comp.stmts[0], comp.stmts[1]) == 1


class TestFuse:
    def test_fused_statements_share_loop(self):
        comp = Computation()
        comp.new_stmt("a[i] = i", "{[i] : 0 <= i < N}", writes=["a"])
        comp.new_stmt("b[x] = a[x]", "{[x] : 0 <= x < N}",
                      reads=["a"], writes=["b"])
        depth = fuse(comp, comp.stmts[0].name, comp.stmts[1].name)
        assert depth == 1
        code = comp.codegen()
        assert code.count("for ") == 1
        assert "b[i] = a[i]" in code

    def test_fusion_preserves_statement_order(self):
        comp = Computation()
        comp.new_stmt("first(i)", "{[i] : 0 <= i < N}")
        comp.new_stmt("second(i)", "{[i] : 0 <= i < N}")
        fuse(comp, comp.stmts[0].name, comp.stmts[1].name)
        code = comp.codegen()
        assert code.index("first") < code.index("second")

    def test_apply_all_fusion_chains(self):
        comp = Computation()
        for idx in range(4):
            comp.new_stmt(f"a{idx}[i] = i", "{[i] : 0 <= i < N}")
        fused = apply_all_fusion(comp)
        assert fused == 3
        assert comp.codegen().count("for ") == 1

    def test_apply_all_fusion_respects_phases(self):
        comp = Computation()
        comp.add_stmt(make("a[i] = i", "{[i] : 0 <= i < N}", phase=0))
        comp.add_stmt(make("b[i] = a[i]", "{[i] : 0 <= i < N}", phase=1))
        fused = apply_all_fusion(comp)
        assert fused == 0
        assert comp.codegen().count("for ") == 2

    def test_incompatible_not_fused(self):
        comp = Computation()
        comp.new_stmt("a[i] = i", "{[i] : 0 <= i < N}")
        comp.new_stmt("b[i] = i", "{[i] : 5 <= i < N}")
        assert apply_all_fusion(comp) == 0

    def test_fused_executable(self):
        comp = Computation()
        comp.new_stmt("a[i] = i * 2", "{[i] : 0 <= i < N}", writes=["a"])
        comp.new_stmt("b[x] = a[x] + 1", "{[x] : 0 <= x < N}",
                      reads=["a"], writes=["b"])
        apply_all_fusion(comp)
        env = {"N": 4, "a": [0] * 4, "b": [0] * 4}
        exec(comp.codegen(), {}, env)
        assert env["b"] == [1, 3, 5, 7]
