"""Tests for the Table 2 introspection utilities."""

from repro.formats import csr, dia, mcoo, scoo
from repro.synthesis import constraints_per_unknown_uf, render_table2


class TestCooToMcoo:
    """The paper's running example: Table 2's columns must appear."""

    def setup_method(self):
        self.table = constraints_per_unknown_uf(scoo(), mcoo())

    def test_unknown_ufs(self):
        assert set(self.table) == {"row_m", "col_m", "P"}

    def test_row_m_constraint(self):
        # Table 2: row_1(n1) = row_m(n2)
        assert any(
            "row1(n)" in c and "row_m(n2)" in c for c in self.table["row_m"]
        )

    def test_col_m_constraint(self):
        assert any(
            "col1(n)" in c and "col_m(n2)" in c for c in self.table["col_m"]
        )

    def test_domains_listed(self):
        assert any("domain(row_m)" in c for c in self.table["row_m"])

    def test_permutation_column(self):
        joined = " ".join(self.table["P"])
        assert "P(i, j)" in joined
        assert "MORTON" in joined


class TestOtherConversions:
    def test_csr_destination(self):
        table = constraints_per_unknown_uf(scoo(), csr())
        assert set(table) == {"rowptr", "col2", "P"}
        rowptr = " ".join(table["rowptr"])
        assert "rowptr(" in rowptr
        assert "e1 <= e2" in rowptr  # the monotonic quantifier

    def test_dia_destination(self):
        table = constraints_per_unknown_uf(scoo(), dia())
        assert set(table) == {"off"}  # no reordering quantifier, no P
        off = " ".join(table["off"])
        assert "off(d)" in off
        assert "e1 < e2" in off  # strict monotonicity

    def test_same_format_renames(self):
        table = constraints_per_unknown_uf(scoo(), scoo())
        assert "row12" in table and "col12" in table


class TestRendering:
    def test_render_table2(self):
        text = render_table2(scoo(), mcoo())
        assert "SCOO -> MCOO" in text
        assert "row_m:" in text
        assert "P:" in text
