"""Cache lifecycle regressions: clear scoping, leaks, races, budgets.

Each test here pins one of the bugs a long-lived ``repro serve`` process
cannot live with: a full cache clear destroying the learned-cost store,
the fingerprint table leaking descriptors, the memo's check-then-act
race synthesizing the same key N times under contention, and the disk
store growing without bound.
"""

import gc
import os
import threading
import time
import weakref

import pytest

from repro.formats import get_format
from repro.io.descriptor_json import descriptor_from_dict, descriptor_to_dict
from repro.planner.coststore import CostStore
from repro.synthesis import (
    cache_stats,
    clear_disk_cache,
    clear_memo,
    format_fingerprint,
    synthesize_cached,
)
from repro.synthesis import cache as cache_mod
from repro._prof import PROF


@pytest.fixture
def isolated_cache(tmp_path, monkeypatch):
    """Fresh cache root, fresh memo, no budget, costs co-located."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_CACHE_DISABLE", raising=False)
    monkeypatch.delenv("REPRO_CACHE_MAX_BYTES", raising=False)
    monkeypatch.delenv("REPRO_CACHE_MAX_ENTRIES", raising=False)
    monkeypatch.delenv("REPRO_COSTS_DIR", raising=False)
    monkeypatch.delenv("REPRO_COSTS_DISABLE", raising=False)
    clear_memo()
    yield tmp_path / "cache"
    clear_memo()


class TestClearScoping:
    def test_cost_store_survives_full_clear(self, isolated_cache):
        # The learned-cost store lives under <cache root>/costs/; a full
        # `repro cache clear --all-versions` used to rglob it away.
        store = CostStore()
        store.record("conv-key", "bucket", 0.25, label="COO->CSR")
        assert store.path.is_file()

        synthesize_cached(get_format("COO"), get_format("CSR"))
        assert cache_stats()["entries"] >= 1

        removed = clear_disk_cache(all_versions=True)
        assert removed >= 1
        assert cache_stats()["entries"] == 0

        survivor = CostStore()
        assert survivor.lookup("conv-key", "bucket") is not None

    def test_clear_all_versions_removes_every_partition(
        self, isolated_cache
    ):
        synthesize_cached(get_format("COO"), get_format("CSR"))
        # Fake a stale partition from an older code version.
        stale = cache_mod.cache_root() / ("0" * 16) / "ab"
        stale.mkdir(parents=True)
        (stale / "old.json").write_text("{}")
        assert clear_disk_cache(all_versions=True) >= 2
        assert not list(cache_mod.cache_root().rglob("*.json")) or all(
            "costs" in str(p)
            for p in cache_mod.cache_root().rglob("*.json")
        )


class TestFingerprintLifetime:
    def _fresh_descriptor(self):
        return descriptor_from_dict(descriptor_to_dict(get_format("COO")))

    def test_fingerprint_matches_library_descriptor(self):
        fresh = self._fresh_descriptor()
        assert format_fingerprint(fresh) == format_fingerprint(
            get_format("COO")
        )

    def test_fingerprinted_descriptor_is_collectable(self):
        # The old id()-keyed module table held a strong reference to
        # every descriptor ever fingerprinted — an unbounded leak under
        # parameterized-format factories in a resident daemon.
        fmt = self._fresh_descriptor()
        format_fingerprint(fmt)
        ref = weakref.ref(fmt)
        del fmt
        gc.collect()
        assert ref() is None

    def test_fingerprint_memoized_per_object(self):
        fmt = self._fresh_descriptor()
        first = format_fingerprint(fmt)
        assert fmt.__dict__.get(cache_mod._FP_ATTR) == first
        assert format_fingerprint(fmt) == first


class TestInflightCoalescing:
    def test_one_synthesis_per_key_under_contention(
        self, isolated_cache, monkeypatch
    ):
        calls = []
        real = cache_mod._raw_synthesize

        def slow_synthesize(*args, **kwargs):
            calls.append(threading.get_ident())
            time.sleep(0.3)  # hold the key so every waiter queues up
            return real(*args, **kwargs)

        monkeypatch.setattr(cache_mod, "_raw_synthesize", slow_synthesize)

        n = 8
        barrier = threading.Barrier(n)
        results = [None] * n
        coalesced_before = PROF.counters.get("cache.coalesced", 0)

        def worker(slot):
            barrier.wait()
            results[slot] = synthesize_cached(
                get_format("COO"), get_format("CSR")
            )

        threads = [
            threading.Thread(target=worker, args=(slot,))
            for slot in range(n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert len(calls) == 1, f"{len(calls)} syntheses for one key"
        assert all(r is results[0] for r in results)
        assert PROF.counters.get("cache.coalesced", 0) > coalesced_before

    def test_distinct_keys_do_not_serialize(self, isolated_cache):
        # Locks are per key: COO->CSR and CSR->CSC proceed independently.
        a = synthesize_cached(get_format("COO"), get_format("CSR"))
        b = synthesize_cached(get_format("CSR"), get_format("CSC"))
        assert a is not b


class TestShardedBudget:
    def test_entries_land_in_shard_subdirs(self, isolated_cache):
        synthesize_cached(get_format("COO"), get_format("CSR"))
        files = list(cache_mod.cache_dir().rglob("*.json"))
        assert files, "no disk entry written"
        for path in files:
            shard = path.parent.name
            assert len(shard) == 2 and all(
                c in "0123456789abcdef" for c in shard
            ), f"entry {path} not in a two-hex-digit shard"

    def test_entry_budget_enforced(self, isolated_cache, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_ENTRIES", "1")
        synthesize_cached(get_format("COO"), get_format("CSR"))
        clear_memo()
        synthesize_cached(get_format("CSR"), get_format("CSC"))
        assert cache_stats()["entries"] <= 1

    def test_byte_budget_enforced(self, isolated_cache, monkeypatch):
        synthesize_cached(get_format("COO"), get_format("CSR"))
        size = cache_stats()["bytes"]
        assert size > 0
        # A budget below one entry's size evicts down to zero entries.
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", str(size - 1))
        clear_memo()
        synthesize_cached(get_format("CSR"), get_format("CSC"))
        assert cache_stats()["bytes"] <= size - 1

    def test_eviction_is_lru_not_fifo(self, isolated_cache, monkeypatch):
        synthesize_cached(get_format("COO"), get_format("CSR"))
        clear_memo()
        synthesize_cached(get_format("CSR"), get_format("CSC"))
        files = {
            p: p.stat().st_mtime
            for p in cache_mod.cache_dir().rglob("*.json")
        }
        assert len(files) == 2
        # Age the CSR->CSC entry far into the past, then "use" COO->CSR
        # via a disk hit (which refreshes its mtime), so the aged entry
        # is the LRU victim when the budget forces one eviction.
        newest = max(files, key=files.get)
        os.utime(newest, (1.0, 1.0))
        clear_memo()
        synthesize_cached(get_format("COO"), get_format("CSR"))
        monkeypatch.setenv("REPRO_CACHE_MAX_ENTRIES", "2")
        clear_memo()
        synthesize_cached(get_format("COO"), get_format("DIA"))
        survivors = set(cache_mod.cache_dir().rglob("*.json"))
        assert newest not in survivors
        assert len(survivors) == 2
