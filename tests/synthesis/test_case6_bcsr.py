"""Tests for Case 6 (affine block decomposition) and BCSR destinations.

The paper's five cases cover Table 1's formats and anticipate more being
added; Case 6 handles ``e = B*x + w`` with ``0 <= w < B``, which is what
blocked layouts need.  These tests pin both the mechanism and end-to-end
correctness of synthesizing *into* BCSR.
"""

import random

import pytest

from repro import BCSRMatrix, COOMatrix, CSRMatrix, convert, dense_equal
from repro.formats import bcsr, container_to_env, csr, mcoo, scoo
from repro.synthesis import synthesize


def random_dense(seed, nrows=11, ncols=13, density=0.3):
    rng = random.Random(seed)
    return [
        [
            round(rng.uniform(0.5, 9.5), 3) if rng.random() < density else 0.0
            for _ in range(ncols)
        ]
        for _ in range(nrows)
    ]


class TestCase6Mechanism:
    def setup_method(self):
        self.conv = synthesize(scoo(), bcsr(2))

    def test_decomposition_noted(self):
        joined = " ".join(self.conv.notes)
        assert "case 6" in joined
        assert "// 2" in joined and "% 2" in joined

    def test_generated_code_uses_div_mod(self):
        assert "// 2" in self.conv.source
        assert "% 2" in self.conv.source

    def test_unique_rank_permutation(self):
        assert "unique=True" in self.conv.source

    def test_nb_derived_from_distinct_count(self):
        assert "NB = len(P)" in self.conv.source
        assert "NB" in self.conv.returns

    def test_block_ordering_key(self):
        assert "key=lambda i, j: (((i) // 2), ((j) // 2),)" in self.conv.source

    def test_data_sized_by_blocks(self):
        assert "Adst = [0.0] * (4 * NB)" in self.conv.source


class TestBcsrDestinationCorrectness:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_reference_assembly(self, seed):
        dense = random_dense(seed)
        coo = COOMatrix.from_dense(dense)
        out = convert(coo, "BCSR")
        out.check()
        assert dense_equal(out.to_dense(), dense)
        ref = BCSRMatrix.from_dense(dense, 2)
        assert out.browptr == ref.browptr
        assert out.bcol == ref.bcol
        assert out.data == ref.data

    def test_block4(self):
        dense = random_dense(41, nrows=17, ncols=10)
        coo = COOMatrix.from_dense(dense)
        conv = synthesize(scoo(), bcsr(4))
        out = conv(row1=coo.row, col1=coo.col, Asrc=coo.val,
                   NR=17, NC=10, NNZ=coo.nnz)
        m = BCSRMatrix(17, 10, 4, out["browptr"], out["bcol"], out["Adst"])
        m.check()
        assert dense_equal(m.to_dense(), dense)

    def test_from_csr(self):
        dense = random_dense(42)
        csrm = CSRMatrix.from_dense(dense)
        out = convert(csrm, "BCSR")
        out.check()
        assert dense_equal(out.to_dense(), dense)

    def test_from_mcoo(self):
        dense = random_dense(43)
        from repro.runtime import MortonCOOMatrix

        m = MortonCOOMatrix.from_coo(COOMatrix.from_dense(dense))
        out = convert(m, "BCSR")
        assert dense_equal(out.to_dense(), dense)

    def test_empty_matrix(self):
        dense = [[0.0] * 4 for _ in range(4)]
        out = convert(COOMatrix.from_dense(dense), "BCSR")
        out.check()
        assert out.nblocks == 0

    def test_single_block(self):
        dense = [[1.0, 2.0], [3.0, 4.0]]
        out = convert(COOMatrix.from_dense(dense), "BCSR")
        assert out.nblocks == 1
        assert out.data == [1.0, 2.0, 3.0, 4.0]

    def test_uneven_edge_blocks(self):
        # 3x3 with 2x2 blocks: edge blocks are partial.
        dense = [[1.0, 0.0, 2.0], [0.0, 0.0, 0.0], [3.0, 0.0, 4.0]]
        out = convert(COOMatrix.from_dense(dense), "BCSR")
        out.check()
        assert dense_equal(out.to_dense(), dense)

    def test_bcsr_round_trip(self):
        dense = random_dense(44)
        bcsr_m = convert(COOMatrix.from_dense(dense), "BCSR")
        back = convert(bcsr_m, "SCOO")
        # BCSR stores explicit zeros inside blocks; dense images must agree.
        assert dense_equal(back.to_dense(), dense)


class TestCase6DoesNotFireOnSources:
    def test_bcsr_source_unaffected(self):
        conv = synthesize(bcsr(2), csr())
        # The source's block structure stays as iteration, not div/mod.
        assert "browptr[bi]" in conv.source

    def test_plain_formats_unaffected(self):
        conv = synthesize(scoo(), mcoo())
        assert not any("case 6" in n for n in conv.notes)
