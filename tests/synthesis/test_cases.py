"""Unit tests for constraint normalization and the 5 synthesis cases."""

import pytest

from repro.ir import Expr, UFCall, Var, equals, greater_equal, less_equal
from repro.synthesis import (
    Resolver,
    classify,
    normalize_for_uf,
    select_plans,
)
from repro.synthesis.cases import UFStatementPlan


def uf(name, *args):
    return UFCall(name, list(args))


class TestNormalize:
    def test_equality_positive_side(self):
        c = equals(uf("col2", Var("k")), uf("col1", Var("n")))
        norm = normalize_for_uf(c, "col2")
        assert norm is not None
        assert norm.op == "="
        assert norm.call == uf("col2", Var("k"))
        assert norm.rhs == uf("col1", Var("n")).as_expr()

    def test_equality_negated_side(self):
        c = equals(uf("col1", Var("n")), uf("col2", Var("k")))
        norm = normalize_for_uf(c, "col2")
        assert norm is not None
        assert norm.op == "="
        assert norm.rhs == uf("col1", Var("n")).as_expr()

    def test_lower_bound(self):
        # rowptr(i) <= k  =>  rowptr(i) normalized with op '<='
        c = less_equal(uf("rowptr", Var("i")), Var("k"))
        norm = normalize_for_uf(c, "rowptr")
        assert norm is not None
        assert norm.op == "<="
        assert norm.rhs == Var("k").as_expr()

    def test_upper_bound(self):
        # k < rowptr(i+1)  =>  rowptr(i+1) >= k + 1
        from repro.ir import less

        c = less(Var("k"), uf("rowptr", Var("i") + 1))
        norm = normalize_for_uf(c, "rowptr")
        assert norm is not None
        assert norm.op == ">="
        assert norm.rhs == Var("k") + 1

    def test_absent_uf(self):
        c = equals(Var("i"), Var("j"))
        assert normalize_for_uf(c, "rowptr") is None

    def test_two_occurrences_rejected(self):
        c = equals(uf("f", Var("i")), uf("f", Var("j")))
        assert normalize_for_uf(c, "f") is None

    def test_self_referential_rejected(self):
        c = equals(uf("f", uf("f", Var("i"))), Var("j"))
        assert normalize_for_uf(c, "f") is None


class TestResolver:
    def test_identity(self):
        r = Resolver({"n": Var("n").as_expr()})
        assert r.resolve(Var("n") + 1) == Var("n") + 1

    def test_substitution_chain(self):
        r = Resolver(
            {
                "n": Var("n").as_expr(),
                "ii": uf("row1", Var("n")).as_expr(),
                "kk": Var("ii") + 1,
            }
        )
        out = r.resolve(Var("kk").as_expr())
        assert out == uf("row1", Var("n")) + 1

    def test_unresolved_returns_none(self):
        r = Resolver({"d": None, "n": Var("n").as_expr()})
        assert r.resolve(Var("d") + Var("n")) is None

    def test_unresolved_inside_uf_arg(self):
        r = Resolver({"d": None})
        assert r.resolve(uf("off", Var("d")).as_expr()) is None

    def test_unmapped_vars_pass_through(self):
        r = Resolver({})
        assert r.resolve(Var("x") + 1) == Var("x") + 1


class TestClassify:
    def resolver(self):
        return Resolver(
            {
                "n": Var("n").as_expr(),
                "ii2": uf("row1", Var("n")).as_expr(),
                "k": Var("k").as_expr(),  # bound position variable
                "d": None,  # unresolved search variable
            }
        )

    def test_case1_scatter(self):
        norm = normalize_for_uf(
            equals(uf("col2", Var("k")), uf("col1", Var("n"))), "col2"
        )
        plan = classify(norm, self.resolver())
        assert plan is not None
        assert plan.kind == "scatter"
        assert plan.args == (Var("k").as_expr(),)

    def test_case2_min(self):
        norm = normalize_for_uf(
            less_equal(uf("rowptr", Var("ii2")), Var("k")), "rowptr"
        )
        plan = classify(norm, self.resolver())
        assert plan.kind == "min"
        assert plan.args == (uf("row1", Var("n")).as_expr(),)
        assert plan.value == Var("k").as_expr()

    def test_case3_max(self):
        norm = normalize_for_uf(
            greater_equal(uf("rowptr", Var("ii2") + 1), Var("k") + 1), "rowptr"
        )
        plan = classify(norm, self.resolver())
        assert plan.kind == "max"
        assert plan.args == (uf("row1", Var("n")) + 1,)

    def test_case5_insert(self):
        # off(d) = col1(n) - row1(n): d is unresolved -> insert.
        norm = normalize_for_uf(
            equals(uf("off", Var("d")),
                   uf("col1", Var("n")) - uf("row1", Var("n"))),
            "off",
        )
        plan = classify(norm, self.resolver())
        assert plan.kind == "insert"
        assert plan.value == uf("col1", Var("n")) - uf("row1", Var("n"))

    def test_unresolvable_value_gives_none(self):
        # value references the unresolved d at top level: unusable.
        norm = normalize_for_uf(
            equals(uf("col2", Var("k")), Var("d")), "col2"
        )
        assert classify(norm, self.resolver()) is None

    def test_inequality_with_unresolved_arg_gives_none(self):
        norm = normalize_for_uf(
            less_equal(uf("off", Var("d")), Var("k")), "off"
        )
        assert classify(norm, self.resolver()) is None


class TestSelectPlans:
    def plan(self, uf_name, kind):
        return UFStatementPlan(uf_name, kind, (), Expr(0), case=0)

    def test_one_plan_per_uf(self):
        plans = [self.plan("rowptr", "min"), self.plan("rowptr", "max")]
        chosen = select_plans(plans)
        assert len(chosen) == 1

    def test_preference_order(self):
        plans = [
            self.plan("u", "min"),
            self.plan("u", "max"),
            self.plan("u", "scatter"),
            self.plan("u", "insert"),
        ]
        assert select_plans(plans)[0].kind == "insert"
        assert select_plans(plans[:3])[0].kind == "scatter"
        assert select_plans(plans[:2])[0].kind == "max"

    def test_different_ufs_all_kept(self):
        plans = [self.plan("a", "max"), self.plan("b", "min")]
        assert len(select_plans(plans)) == 2
