"""Unit tests for the synthesis engine: structure of generated inspectors."""

import pytest

from repro.formats import coo, coo3d, csc, csr, dia, get_format, mcoo, mcoo3, scoo
from repro.synthesis import SynthesisError, synthesize


class TestScooToCsr:
    """The paper's fast path: sorted COO to CSR, permutation dead-coded."""

    def setup_method(self):
        self.conv = synthesize(scoo(), csr())

    def test_no_permutation_in_code(self):
        assert "OrderedList" not in self.conv.source
        assert any("dead code" in n for n in self.conv.notes)

    def test_single_population_loop(self):
        # Population and copy fuse into one loop; the monotonic fix-up over
        # rows is the only other loop.
        assert self.conv.source.count("for ") == 2

    def test_reduction_strengthened(self):
        assert "max(rowptr" not in self.conv.source.split("for x")[0]
        assert any("strengthened" in n for n in self.conv.notes)

    def test_monotonic_fixup_present(self):
        assert "rowptr[x] = max(rowptr[x], rowptr[x - 1])" in self.conv.source

    def test_params_and_returns(self):
        assert set(self.conv.params) == {"row1", "col1", "NR", "NC", "NNZ",
                                         "Asrc"}
        assert set(self.conv.returns) == {"rowptr", "col2", "Adst"}

    def test_c_source_generated(self):
        assert "for (int" in self.conv.c_source

    def test_composed_relation_in_notes(self):
        assert any("composed relation" in n for n in self.conv.notes)


class TestScooToCsc:
    def setup_method(self):
        self.conv = synthesize(scoo(), csc())

    def test_bucket_sort_inlined(self):
        assert "P_count" in self.conv.source
        assert "P_fill" in self.conv.source
        assert any("bucket" in n for n in self.conv.notes)

    def test_colptr_aliased_to_prefix(self):
        assert "colptr = list(P_count)" in self.conv.source
        assert any("aliased" in n for n in self.conv.notes)

    def test_unoptimized_uses_permutation_object(self):
        conv = synthesize(scoo(), csc(), optimize=False)
        assert "LexBucketPermutation" in conv.source


class TestScooToMcoo:
    def setup_method(self):
        self.conv = synthesize(scoo(), mcoo())

    def test_ordered_list_with_morton_key(self):
        assert "OrderedList(2, 1, key=lambda i, j: (MORTON(i, j),)" in \
            self.conv.source

    def test_population_scatters_through_lookup(self):
        assert "P(" in self.conv.source

    def test_returns_morton_arrays(self):
        assert {"row_m", "col_m", "Adst"} <= set(self.conv.returns)


class TestScooToDia:
    def test_linear_search_shape(self):
        conv = synthesize(scoo(), dia())
        assert "off.insert(col1[n] - row1[n])" in conv.source
        assert "for d in range(0, ND):" in conv.source
        assert "ND = len(off)" in conv.source

    def test_copy_not_fused_with_population(self):
        conv = synthesize(scoo(), dia())
        assert any("blocks fusion" in n for n in conv.notes)

    def test_binary_search_rewrite(self):
        conv = synthesize(scoo(), dia(), binary_search=True)
        assert "BSEARCH(off, col1[n] - row1[n])" in conv.source
        assert "for d in range" not in conv.source
        assert any("binary search" in n for n in conv.notes)


class TestUnsortedCooSources:
    def test_coo_to_csr_needs_permutation(self):
        conv = synthesize(coo(), csr())
        assert "OrderedList" in conv.source or "P_count" in conv.source
        assert any("permutation required" in n for n in conv.notes)

    def test_coo_to_coo_identity_copy(self):
        conv = synthesize(coo(), coo())
        # Unordered destination reuses source traversal order; the renamed
        # UFs are scattered directly.
        assert any("unordered" in n for n in conv.notes)
        assert "row12" in conv.returns or "row12" in conv.source


class TestCsrSources:
    def test_csr_to_csc_walks_rows(self):
        conv = synthesize(csr(), csc())
        assert "for k in range(rowptr[ii], rowptr[ii + 1]):" in conv.source

    def test_csr_to_scoo_is_identity_order(self):
        conv = synthesize(csr(), scoo())
        assert any("orderings match" in n for n in conv.notes)
        assert "OrderedList" not in conv.source


class TestDiaSource:
    def test_dia_to_csr_derives_nnz(self):
        conv = synthesize(dia(), csr())
        assert "NNZ = len(P)" in conv.source
        assert "ND" in conv.params

    def test_dia_source_guards_column_range(self):
        conv = synthesize(dia(), csr())
        # Padding positions (j out of range) must be skipped.
        assert "if (" in conv.source


class Test3D:
    def test_coo3d_to_mcoo3(self):
        conv = synthesize(coo3d(sorted_lex=True), mcoo3())
        assert "MORTON(i, j, k)" in conv.source
        assert {"row_m", "col_m", "z_m", "Adst"} <= set(conv.returns)

    def test_rank_mismatch_rejected(self):
        with pytest.raises(SynthesisError):
            synthesize(coo(), mcoo3())


class TestSameFormatRoundtrip:
    def test_scoo_to_scoo_renames_collisions(self):
        conv = synthesize(scoo(), scoo())
        # Destination UFs must not collide with source UFs.
        assert conv.uf_output_map["row1"] != "row1"

    def test_csr_to_csr(self):
        conv = synthesize(csr(), csr())
        assert conv.uf_output_map["rowptr"] == "rowptr2"


class TestNamesAndMetadata:
    def test_default_name(self):
        assert synthesize(scoo(), csr()).name == "scoo_to_csr"

    def test_custom_name(self):
        assert synthesize(scoo(), csr(), name="f").name == "f"

    def test_source_compiles(self):
        conv = synthesize(scoo(), csr())
        assert callable(conv.compile())

    def test_all_pairwise_2d_synthesize(self):
        names = ["COO", "SCOO", "MCOO", "CSR", "CSC", "DIA"]
        for src_name in names:
            for dst_name in names:
                conv = synthesize(get_format(src_name), get_format(dst_name))
                assert conv.source.startswith("def ")
