"""Failure-injection tests: descriptors the synthesis engine must reject.

The engine's error messages are part of its interface — a user writing a
new format descriptor needs to learn *why* synthesis failed.  Each test
builds a deliberately deficient descriptor and checks the failure mode.
"""

import pytest

from repro.formats import FormatDescriptor, coo, scoo
from repro.ir import MonotonicQuantifier
from repro.synthesis import SynthesisError, synthesize


def minimal_1d(name="VEC", **overrides):
    """A tiny 1-D 'sparse vector' format used as a mutation base."""
    spec = dict(
        name=name,
        sparse_to_dense=(
            "{[n, ii] -> [i] : idx(n) = i && ii = i && 0 <= i < N"
            " && 0 <= n < NNZ}"
        ),
        data_access="{[n, ii] -> [nd] : nd = n}",
        uf_domains={"idx": "{[x] : 0 <= x < NNZ}"},
        uf_ranges={"idx": "{[i] : 0 <= i < N}"},
        shape_syms=["N"],
        position_var="n",
    )
    spec.update(overrides)
    return FormatDescriptor(**spec)


class TestRankAndShape:
    def test_rank_mismatch(self):
        from repro.formats import mcoo3

        with pytest.raises(SynthesisError, match="rank mismatch"):
            synthesize(coo(), mcoo3())

    def test_vector_to_vector_works_as_baseline(self):
        # The mutation base itself must synthesize, so failures below are
        # attributable to the injected defect.
        conv = synthesize(minimal_1d(), minimal_1d(name="VEC2"))
        assert conv.source.startswith("def ")


class TestUnpopulatableUF:
    def test_uf_without_usable_constraint(self):
        # The destination declares a UF that never appears in its map, so
        # composition yields no constraint to populate it from.
        bad = minimal_1d(
            name="BAD",
            uf_domains={
                "idx": "{[x] : 0 <= x < NNZ}",
                "ghost": "{[x] : 0 <= x < NNZ}",
            },
            uf_ranges={
                "idx": "{[i] : 0 <= i < N}",
                "ghost": "{[i] : 0 <= i < N}",
            },
            sparse_to_dense=(
                "{[n, ii] -> [i] : idx(n) = i && ghost(n) = i && ii = i"
                " && 0 <= i < N && 0 <= n < NNZ}"
            ),
        )
        # ghost(n) = i is actually populatable (same as idx); instead make a
        # variant whose UF argument is never resolvable.
        conv = synthesize(minimal_1d(), bad)
        assert conv.source  # sanity: this one succeeds

    def test_insert_without_strict_quantifier(self):
        # A DIA-like destination whose offset array lacks the strict
        # monotonic quantifier: the insert abstraction cannot place values.
        dia_like = FormatDescriptor(
            name="DIAX",
            sparse_to_dense=(
                "{[ii, d, jj] -> [i, j] : i = ii && 0 <= i < NR"
                " && 0 <= d < ND && j = i + off(d) && 0 <= j < NC && jj = j}"
            ),
            data_access="{[ii, d, jj] -> [kd] : kd = ND * ii + d}",
            uf_domains={"off": "{[x] : 0 <= x < ND}"},
            uf_ranges={"off": "{[o] : 0 - NR < o < NC}"},
            monotonic=[],  # the defect
            shape_syms=["NR", "NC"],
        )
        # Without the strict quantifier the offset variable is no longer a
        # search variable, so the size symbol ND becomes underivable — a
        # correct rejection with a different (earlier) diagnosis.
        with pytest.raises(SynthesisError):
            synthesize(scoo(), dia_like)

    def test_nondecreasing_quantifier_insufficient_for_insert(self):
        dia_like = FormatDescriptor(
            name="DIAY",
            sparse_to_dense=(
                "{[ii, d, jj] -> [i, j] : i = ii && 0 <= i < NR"
                " && 0 <= d < ND && j = i + off(d) && 0 <= j < NC && jj = j}"
            ),
            data_access="{[ii, d, jj] -> [kd] : kd = ND * ii + d}",
            uf_domains={"off": "{[x] : 0 <= x < ND}"},
            uf_ranges={"off": "{[o] : 0 - NR < o < NC}"},
            monotonic=[MonotonicQuantifier("off", strict=False)],
            shape_syms=["NR", "NC"],
        )
        with pytest.raises(SynthesisError):
            synthesize(scoo(), dia_like)


class TestUnderivableSizes:
    def test_missing_size_symbol(self):
        # Destination sized by a symbol (K) that neither the source provides
        # nor any insert structure or permutation can measure.
        bad = minimal_1d(
            name="BADSZ",
            sparse_to_dense=(
                "{[n, ii] -> [i] : idx(n) = i && ii = i && 0 <= i < N"
                " && 0 <= n < K}"
            ),
            uf_domains={"idx": "{[x] : 0 <= x < K}"},
        )
        with pytest.raises(SynthesisError, match="size symbol"):
            synthesize(minimal_1d(), bad)


class TestDescriptorLevelErrors:
    def test_non_function_map_rejected_at_descriptor(self):
        from repro.formats import FormatError

        with pytest.raises(FormatError):
            FormatDescriptor(
                name="NF",
                sparse_to_dense="{[n] -> [i] : 0 <= i < N && 0 <= n < NNZ}",
                data_access="{[n] -> [nd] : nd = n}",
            )

    def test_error_message_names_the_underivable_symbol(self):
        dia_like = FormatDescriptor(
            name="DIAZ",
            sparse_to_dense=(
                "{[ii, d, jj] -> [i, j] : i = ii && 0 <= i < NR"
                " && 0 <= d < ND && j = i + off(d) && 0 <= j < NC && jj = j}"
            ),
            data_access="{[ii, d, jj] -> [kd] : kd = ND * ii + d}",
            uf_domains={"off": "{[x] : 0 <= x < ND}"},
            uf_ranges={"off": "{[o] : 0 - NR < o < NC}"},
            shape_syms=["NR", "NC"],
        )
        with pytest.raises(SynthesisError, match="ND"):
            synthesize(scoo(), dia_like)


class TestCustomFormatSynthesis:
    """A user-defined format must synthesize end-to-end (the paper's point:
    n descriptors give n^2 conversions with no new code)."""

    def test_reverse_sorted_coo(self):
        from repro.ir import OrderingQuantifier, Var

        # COO sorted by descending column then ascending row.
        rcoo = FormatDescriptor(
            name="RCOO",
            sparse_to_dense=(
                "{[n, ii, jj] -> [i, j] : row_r(n) = i && col_r(n) = j"
                " && ii = i && jj = j && 0 <= i < NR && 0 <= j < NC"
                " && 0 <= n < NNZ}"
            ),
            data_access="{[n, ii, jj] -> [nd] : nd = n}",
            uf_domains={
                "row_r": "{[x] : 0 <= x < NNZ}",
                "col_r": "{[x] : 0 <= x < NNZ}",
            },
            uf_ranges={
                "row_r": "{[i] : 0 <= i < NR}",
                "col_r": "{[i] : 0 <= i < NC}",
            },
            ordering=OrderingQuantifier(
                ["i", "j"], [-Var("j"), Var("i").as_expr()]
            ),
            coord_ufs={"i": "row_r", "j": "col_r"},
            shape_syms=["NR", "NC"],
        )
        conv = synthesize(scoo(), rcoo)
        out = conv(
            row1=[0, 0, 1], col1=[0, 2, 1], Asrc=[1.0, 2.0, 3.0],
            NR=2, NC=3, NNZ=3,
        )
        # Descending column order: (0,2), (1,1), (0,0).
        assert out["col_r"] == [2, 1, 0]
        assert out["row_r"] == [0, 1, 0]
        assert out["Adst"] == [2.0, 3.0, 1.0]
