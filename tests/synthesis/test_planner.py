"""Tests for the multi-step conversion planner."""

import random

import pytest

from repro import (
    COOMatrix,
    ConversionPlanner,
    DIAMatrix,
    convert_via_plan,
    dense_equal,
)
from repro.planner import PLANNABLE_2D, estimate_cost
from repro.synthesis import SynthesisError, synthesize
from repro.formats import csr, dia, scoo


def random_dense(seed=0):
    rng = random.Random(seed)
    return [
        [rng.choice([0, 0, 0, 1, 2]) * 1.0 for _ in range(12)]
        for _ in range(10)
    ]


class TestCostModel:
    def test_fast_path_cheaper_than_permuted(self):
        fast = synthesize(scoo(), csr())
        permuted = synthesize(scoo(), csr(), optimize=False)
        assert estimate_cost(fast) < estimate_cost(permuted)

    def test_linear_search_costlier_than_binary(self):
        linear = synthesize(scoo(), dia())
        binary = synthesize(scoo(), dia(), binary_search=True)
        assert estimate_cost(binary) < estimate_cost(linear)

    def test_positive(self):
        assert estimate_cost(synthesize(scoo(), csr())) > 0


class TestPlanning:
    def setup_method(self):
        self.planner = ConversionPlanner()

    def test_direct_edge_wins_for_cheap_conversions(self):
        plan = self.planner.plan("SCOO", "CSR")
        assert plan.formats == ("SCOO", "CSR")
        assert len(plan.steps) == 1

    def test_identity_plan_is_empty_or_direct(self):
        plan = self.planner.plan("CSR", "CSR")
        # Either a no-op (already there) or a direct same-format copy.
        assert plan.formats[0] == "CSR" and plan.formats[-1] == "CSR"

    def test_every_pair_plannable(self):
        source_only = {"ELL"}
        for src in PLANNABLE_2D:
            for dst in PLANNABLE_2D:
                if dst in source_only and dst != src:
                    with pytest.raises(SynthesisError):
                        self.planner.plan(src, dst)
                    continue
                if src in source_only and dst == src:
                    continue  # no self-copy for source-only formats
                plan = self.planner.plan(src, dst)
                assert plan.formats[0] == src
                assert plan.formats[-1] == dst

    def test_3d_planning_includes_csf_source(self):
        from repro.planner import PLANNABLE_3D

        planner = ConversionPlanner(PLANNABLE_3D)
        plan = planner.plan("CSF", "MCOO3")
        assert plan.formats[0] == "CSF"
        assert plan.formats[-1] == "MCOO3"
        with pytest.raises(SynthesisError):
            planner.plan("COO3D", "CSF")

    def test_total_cost_is_sum(self):
        plan = self.planner.plan("MCOO", "DIA")
        assert plan.total_cost == pytest.approx(
            sum(s.cost for s in plan.steps)
        )

    def test_unknown_format(self):
        with pytest.raises(KeyError):
            self.planner.plan("ESB", "CSR")


class TestExecution:
    def test_execute_single_step(self):
        dense = random_dense(1)
        out = convert_via_plan(COOMatrix.from_dense(dense), "CSR")
        out.check()
        assert dense_equal(out.to_dense(), dense)

    def test_execute_every_destination(self):
        dense = random_dense(2)
        coo = COOMatrix.from_dense(dense)
        for dst in ("CSR", "CSC", "DIA", "MCOO", "SCOO"):
            out = convert_via_plan(coo, dst)
            assert dense_equal(out.to_dense(), dense), dst

    def test_execute_from_dia(self):
        dense = random_dense(3)
        dia_m = DIAMatrix.from_dense(dense)
        planner = ConversionPlanner()
        for dst in ("CSR", "SCOO", "MCOO", "DIA"):
            out = planner.execute(dia_m, dst)
            assert dense_equal(out.to_dense(), dense), dst

    def test_plan_caching(self):
        planner = ConversionPlanner()
        planner.plan("SCOO", "CSR")
        first = dict(planner._edges)
        planner.plan("SCOO", "CSR")
        assert planner._edges == first  # no re-synthesis


class TestDefaultPlannerSingletons:
    def test_concurrent_first_calls_share_one_planner(self):
        # Regression: two threads racing the first default_planner() call
        # used to each build a planner, and the loser's memoized edge
        # costs were thrown away.
        import threading

        from repro import planner as planner_mod

        with planner_mod._PLANNER_LOCK:
            saved = dict(planner_mod._DEFAULT_PLANNERS)
            planner_mod._DEFAULT_PLANNERS.clear()
        try:
            barrier = threading.Barrier(8)
            seen = []

            def grab():
                barrier.wait()
                seen.append(planner_mod.default_planner())

            threads = [threading.Thread(target=grab) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len(seen) == 8
            assert all(p is seen[0] for p in seen)
        finally:
            with planner_mod._PLANNER_LOCK:
                planner_mod._DEFAULT_PLANNERS.clear()
                planner_mod._DEFAULT_PLANNERS.update(saved)

    def test_backend_instances_share_the_string_singleton(self):
        from repro.backends import get_backend
        from repro.planner import default_planner

        assert default_planner(get_backend("numpy")) is default_planner(
            "numpy"
        )

    def test_disabled_passes_thread_into_synthesis(self):
        planner = ConversionPlanner(
            ["SCOO", "CSR"], disabled_passes=("fusion",)
        )
        conv = planner.conversion("SCOO", "CSR")
        assert all(
            "into shared loops" not in note for note in conv.notes
        )
