"""The synthesis memo and the persistent inspector cache.

The cache must be invisible except for speed: a conversion served from
the memo or from disk must be bit-identical (same generated source, same
signature, same execution results) to a freshly synthesized one, and
clearing the cache must bring back the same artifact.
"""

import pytest

from repro.formats import get_format
from repro.synthesis import (
    SynthesisError,
    cache_stats,
    clear_disk_cache,
    clear_memo,
    format_fingerprint,
    synthesize,
    synthesize_cached,
)
from repro.synthesis import cache as cache_mod
from repro._prof import PROF


@pytest.fixture
def isolated_cache(tmp_path, monkeypatch):
    """Point the disk cache at a fresh directory and drop the memo."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_CACHE_DISABLE", raising=False)
    clear_memo()
    yield tmp_path / "cache"
    clear_memo()


class TestFingerprint:
    def test_stable_across_lookups(self):
        assert format_fingerprint(get_format("COO")) == format_fingerprint(
            get_format("COO")
        )

    def test_distinct_formats_distinct_fingerprints(self):
        fps = {
            format_fingerprint(get_format(n))
            for n in ("COO", "CSR", "CSC", "DIA")
        }
        assert len(fps) == 4


class TestMemo:
    def test_second_call_is_memo_hit(self, isolated_cache):
        src, dst = get_format("COO"), get_format("CSR")
        first = synthesize_cached(src, dst)
        hits_before = PROF.counters.get("cache.memo.hit", 0)
        second = synthesize_cached(src, dst)
        assert second is first
        assert PROF.counters.get("cache.memo.hit", 0) == hits_before + 1

    def test_failures_memoized(self, isolated_cache):
        src, dst = get_format("COO"), get_format("ELL")
        with pytest.raises(SynthesisError):
            synthesize_cached(src, dst)
        misses_before = PROF.counters.get("cache.miss", 0)
        with pytest.raises(SynthesisError):
            synthesize_cached(src, dst)
        # The second failure came from a cache layer, not re-synthesis.
        assert PROF.counters.get("cache.miss", 0) == misses_before

    def test_planner_synthesizes_once_per_pair(self, isolated_cache):
        # Regression: the planner's edge-cost sweep must route through the
        # cache, so a second planner never re-synthesizes a known pair.
        from repro.planner import ConversionPlanner

        ConversionPlanner(["COO", "CSR"]).edge_cost("COO", "CSR")
        misses_before = PROF.counters.get("cache.miss", 0)
        ConversionPlanner(["COO", "CSR"]).edge_cost("COO", "CSR")
        assert PROF.counters.get("cache.miss", 0) == misses_before


class TestDiskRoundTrip:
    def test_bit_identical_source(self, isolated_cache):
        src, dst = get_format("COO"), get_format("CSR")
        fresh = synthesize_cached(src, dst)
        clear_memo()  # force the disk path
        loaded = synthesize_cached(src, dst)
        assert loaded.source == fresh.source
        assert loaded.params == fresh.params
        assert loaded.returns == fresh.returns
        assert loaded.uf_output_map == fresh.uf_output_map
        assert loaded.backend == fresh.backend

    def test_disk_entry_written(self, isolated_cache):
        synthesize_cached(get_format("COO"), get_format("CSR"))
        assert cache_stats()["entries"] >= 1

    def test_negative_entries_persisted(self, isolated_cache):
        with pytest.raises(SynthesisError):
            synthesize_cached(get_format("COO"), get_format("ELL"))
        clear_memo()
        misses_before = PROF.counters.get("cache.miss", 0)
        with pytest.raises(SynthesisError):
            synthesize_cached(get_format("COO"), get_format("ELL"))
        # Served by the persisted negative entry — no re-synthesis.
        assert PROF.counters.get("cache.miss", 0) == misses_before

    def test_loaded_conversion_executes(self, isolated_cache):
        from repro.runtime.executor import compile_inspector

        synthesize_cached(get_format("COO"), get_format("CSR"))
        clear_memo()
        conv = synthesize_cached(get_format("COO"), get_format("CSR"))
        assert conv.computation is None  # disk entries carry source only
        compiled = compile_inspector(conv.name, conv.source)
        args = dict(
            row1=[0, 0, 1, 2],
            col1=[0, 2, 1, 2],
            Asrc=[1.0, 2.0, 3.0, 4.0],
            NNZ=4,
            NR=3,
            NC=3,
        )
        out = compiled(**args)
        assert out["rowptr"] == [0, 2, 3, 4]
        assert out["col2"] == [0, 2, 1, 2]
        assert out["Adst"] == [1.0, 2.0, 3.0, 4.0]


class TestEquivalence:
    """Identical artifacts with the cache on, off, and after clearing."""

    PAIRS = [("COO", "CSR"), ("CSR", "CSC"), ("COO", "DIA")]

    @pytest.mark.parametrize("src,dst", PAIRS)
    def test_enabled_disabled_and_cleared_agree(
        self, isolated_cache, monkeypatch, src, dst
    ):
        a = synthesize_cached(get_format(src), get_format(dst))

        monkeypatch.setenv("REPRO_CACHE_DISABLE", "1")
        clear_memo()
        b = synthesize_cached(get_format(src), get_format(dst))
        monkeypatch.delenv("REPRO_CACHE_DISABLE")

        removed = clear_disk_cache()
        assert removed >= 1
        clear_memo()
        c = synthesize_cached(get_format(src), get_format(dst))

        assert a.source == b.source == c.source
        assert a.params == b.params == c.params
        assert a.returns == b.returns == c.returns


class TestStatsAndClear:
    def test_stats_shape(self, isolated_cache):
        stats = cache_stats()
        assert set(stats) >= {
            "root",
            "code_version",
            "disk_enabled",
            "entries",
            "stale_entries",
            "memo_entries",
            "counters",
        }

    def test_clear_disk_cache_empties_current_version(self, isolated_cache):
        synthesize_cached(get_format("COO"), get_format("CSR"))
        assert cache_stats()["entries"] >= 1
        clear_disk_cache()
        assert cache_stats()["entries"] == 0

    def test_disk_disable_env(self, isolated_cache, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DISABLE", "1")
        assert not cache_mod.disk_enabled()
        clear_memo()
        synthesize_cached(get_format("COO"), get_format("CSR"))
        assert cache_stats()["entries"] == 0


class TestExecutorCompileCache:
    def test_key_includes_code_version(self):
        from repro.codeversion import code_version_hash
        from repro.runtime import executor

        conv = synthesize(get_format("COO"), get_format("CSR"))
        executor.compile_inspector(conv.name, conv.source)
        version = code_version_hash()
        assert any(version in key for key in executor._COMPILE_CACHE)
