"""Tests for the inspector/executor tandem optimization."""

import random

import pytest

from repro import COOMatrix
from repro.formats import csc, csr, dia, mcoo, scoo
from repro.kernels import dense_spmv
from repro.synthesis import tandem


def workload(seed=0, nrows=8, ncols=10):
    rng = random.Random(seed)
    dense = [
        [rng.choice([0, 0, 0, 1, 2]) * 1.0 for _ in range(ncols)]
        for _ in range(nrows)
    ]
    coo = COOMatrix.from_dense(dense)
    x = [round(rng.uniform(-1, 1), 3) for _ in range(ncols)]
    inputs = dict(
        row1=coo.row, col1=coo.col, Asrc=coo.val,
        NR=nrows, NC=ncols, NNZ=coo.nnz, x=x,
    )
    return dense, x, inputs


class TestScooCsrSpmv:
    def setup_method(self):
        self.result = tandem(scoo(), csr(), "spmv")

    def test_conversion_fully_eliminated(self):
        assert self.result.conversion_eliminated
        assert self.result.conversion_statements_removed > 0

    def test_optimized_reads_source_directly(self):
        assert "Asrc[n]" in self.result.optimized_source
        assert "rowptr" not in self.result.optimized_source

    def test_naive_and_optimized_agree_with_dense(self):
        dense, x, inputs = workload(seed=1)
        reference = dense_spmv(dense, x)
        naive = self.result.run_naive(**inputs)["y"]
        optimized = self.result.run_optimized(**inputs)["y"]
        assert all(abs(a - b) < 1e-9 for a, b in zip(naive, reference))
        assert all(abs(a - b) < 1e-9 for a, b in zip(optimized, reference))

    def test_notes_describe_the_optimization(self):
        joined = " ".join(self.result.notes)
        assert "retargeted" in joined
        assert "dead code elimination" in joined


@pytest.mark.parametrize("dst_factory", [csr, csc, dia, mcoo],
                         ids=["CSR", "CSC", "DIA", "MCOO"])
@pytest.mark.parametrize("kind", ["spmv", "spmv_t", "row_sums", "value_sum"])
class TestAllDestinations:
    def test_pipelines_agree(self, dst_factory, kind):
        result = tandem(scoo(), dst_factory(), kind)
        assert result.conversion_eliminated
        dense, x, inputs = workload(seed=2)
        if kind == "spmv_t":
            inputs["x"] = [0.5] * len(dense)
        naive = result.run_naive(**inputs)
        optimized = result.run_optimized(**inputs)
        key = result.returns[0]
        a, b = naive[key], optimized[key]
        if isinstance(a, list):
            assert all(abs(p - q) < 1e-9 for p, q in zip(a, b))
        else:
            assert abs(a - b) < 1e-9


class TestMetadata:
    def test_params_are_source_side(self):
        result = tandem(scoo(), csr(), "spmv")
        assert "row1" in result.params
        assert "x" in result.params
        assert "rowptr" not in result.params

    def test_returns_are_kernel_outputs(self):
        assert tandem(scoo(), csr(), "spmv").returns == ("y",)
        assert tandem(scoo(), csr(), "value_sum").returns == ("total",)
