"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main
from repro.io import read_matrix, write_matrix
from repro.runtime import COOMatrix, dense_equal


DENSE = [
    [1.0, 0.0, 2.0],
    [0.0, 0.0, 3.0],
    [4.0, 5.0, 0.0],
]


class TestFormats:
    def test_lists_all(self, capsys):
        assert main(["formats"]) == 0
        out = capsys.readouterr().out
        for name in ("COO", "SCOO", "MCOO", "CSR", "CSC", "DIA", "DCSR",
                     "BCSC"):
            assert name in out

    def test_list_subcommand_matches_bare_formats(self, capsys):
        assert main(["formats"]) == 0
        bare = capsys.readouterr().out
        assert main(["formats", "list"]) == 0
        assert capsys.readouterr().out == bare

    def test_list_levels_shows_specs(self, capsys):
        assert main(["formats", "list", "--levels"]) == 0
        out = capsys.readouterr().out
        assert "dense(i), compressed(j)" in out
        assert "singleton(i), singleton(j) @ morton" in out

    def test_compose_prints_descriptor(self, capsys):
        assert main([
            "formats", "compose", "dense(j), compressed(i)",
            "--name", "MYCSC",
        ]) == 0
        out = capsys.readouterr().out
        assert "MYCSC" in out
        assert "colptr" in out

    def test_compose_json(self, capsys):
        import json

        # --json emits the full descriptor document including the levels.
        assert main([
            "formats", "compose", "singleton(i), singleton(j) @ lex",
            "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["levels"]["levels"][0]["kind"] == "singleton"

    def test_compose_save_then_synthesize(self, tmp_path, capsys):
        path = tmp_path / "fmt.json"
        assert main([
            "formats", "compose", "dense(i), compressed(j)",
            "--name", "MYCSR", "--save", str(path),
        ]) == 0
        capsys.readouterr()
        assert main(["synthesize", str(path), "MCOO"]) == 0
        assert "def mycsr_to_mcoo" in capsys.readouterr().out

    def test_compose_bad_spec_is_a_friendly_error(self, capsys):
        assert main(["formats", "compose", "mystery(i), dense(j)"]) == 1
        err = capsys.readouterr().err
        assert "unknown level kind" in err


class TestShow:
    def test_descriptor_printed(self, capsys):
        assert main(["show", "CSR"]) == 0
        out = capsys.readouterr().out
        assert "rowptr" in out
        assert "domain(" in out

    def test_unknown_format(self):
        with pytest.raises(KeyError):
            main(["show", "ESB"])


class TestSynthesize:
    def test_basic(self, capsys):
        assert main(["synthesize", "SCOO", "CSR"]) == 0
        out = capsys.readouterr().out
        assert "def scoo_to_csr" in out

    def test_flags(self, capsys):
        assert main(
            ["synthesize", "SCOO", "DIA", "--binary-search", "--c", "--notes"]
        ) == 0
        out = capsys.readouterr().out
        assert "BSEARCH" in out
        assert "display C" in out
        assert "synthesis decisions" in out

    def test_no_optimize(self, capsys):
        assert main(["synthesize", "SCOO", "CSR", "--no-optimize"]) == 0
        assert "OrderedList" in capsys.readouterr().out


class TestKernel:
    def test_spmv(self, capsys):
        assert main(["kernel", "CSR", "spmv"]) == 0
        out = capsys.readouterr().out
        assert "def csr_spmv" in out

    def test_invalid_kind_rejected(self):
        with pytest.raises(SystemExit):
            main(["kernel", "CSR", "lu"])


class TestConvert:
    def make_input(self, tmp_path):
        path = tmp_path / "in.mtx"
        write_matrix(COOMatrix.from_dense(DENSE), path)
        return path

    def test_convert_roundtrip(self, tmp_path, capsys):
        src = self.make_input(tmp_path)
        dst = tmp_path / "out.mtx"
        assert main(
            ["convert", str(src), str(dst), "--to", "CSR", "--verify"]
        ) == 0
        again = read_matrix(dst)
        assert dense_equal(again.to_dense(), DENSE)
        assert "verified" in capsys.readouterr().err

    def test_convert_with_planner(self, tmp_path):
        src = self.make_input(tmp_path)
        dst = tmp_path / "out.mtx"
        assert main(
            ["convert", str(src), str(dst), "--to", "DIA", "--plan",
             "--verify"]
        ) == 0
        assert dense_equal(read_matrix(dst).to_dense(), DENSE)

    def test_binary_search_flag(self, tmp_path):
        src = self.make_input(tmp_path)
        dst = tmp_path / "out.mtx"
        assert main(
            ["convert", str(src), str(dst), "--to", "DIA",
             "--binary-search", "--verify"]
        ) == 0


class TestArgparse:
    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestPasses:
    def test_lists_passes_and_backends(self, capsys):
        assert main(["passes"]) == 0
        out = capsys.readouterr().out
        for name in ("dedup", "dce", "fusion", "binary-search"):
            assert name in out
        assert "python" in out and "numpy" in out
        assert "opt-in" in out
        assert "vectorized=true" in out

    def test_json_dump(self, capsys):
        import json

        assert main(["passes", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [p["name"] for p in payload["passes"]] == [
            "dedup", "dce", "fusion", "binary-search"
        ]
        assert payload["passes"][-1]["opt_in"] is True
        backends = {b["name"]: b for b in payload["backends"]}
        assert backends["numpy"]["capabilities"]["vectorized"] is True


class TestDisablePass:
    def make_input(self, tmp_path):
        path = tmp_path / "in.mtx"
        write_matrix(COOMatrix.from_dense(DENSE), path)
        return path

    def test_convert_with_disabled_pass(self, tmp_path):
        src = self.make_input(tmp_path)
        dst = tmp_path / "out.mtx"
        assert main(
            ["convert", str(src), str(dst), "--to", "CSR",
             "--disable-pass", "fusion", "--verify"]
        ) == 0
        assert dense_equal(read_matrix(dst).to_dense(), DENSE)

    def test_unknown_pass_is_a_friendly_error(self, tmp_path, capsys):
        src = self.make_input(tmp_path)
        dst = tmp_path / "out.mtx"
        assert main(
            ["convert", str(src), str(dst), "--to", "CSR",
             "--disable-pass", "fusoin"]
        ) == 2
        err = capsys.readouterr().err
        assert "unknown optimization pass" in err
        assert "registered passes" in err

    def test_trace_with_disabled_pass(self, capsys):
        assert main(
            ["trace", "COO", "CSR", "--nnz", "16", "--rows", "8",
             "--cols", "8", "--disable-pass", "fusion"]
        ) == 0
        out = capsys.readouterr().out
        assert "pass.dce" in out
        assert "pass.fusion" not in out


class TestTraceSpans:
    def test_per_pass_spans_present(self, capsys):
        assert main(
            ["trace", "COO", "CSR", "--nnz", "16", "--rows", "8",
             "--cols", "8"]
        ) == 0
        out = capsys.readouterr().out
        assert "synthesis.optimize" in out
        for name in ("pass.dedup", "pass.dce", "pass.fusion"):
            assert name in out

    def test_trace_without_src_dst_or_id_is_an_error(self, capsys):
        assert main(["trace"]) == 2
        assert "SRC DST" in capsys.readouterr().err

    def test_id_without_address_is_an_error(self, capsys):
        assert main(["trace", "--id", "abc123"]) == 2
        assert "--addr" in capsys.readouterr().err


@pytest.fixture(scope="class")
def live_server():
    from repro.serve import ConversionServer

    server = ConversionServer(port=0, workers=2).start_in_background()
    yield server
    server.shutdown()


class TestLiveDaemonCommands:
    """`repro tail / trace --id / stats --addr` against a live daemon."""

    def _addr(self, server):
        return "{}:{}".format(*server.address)

    def _convert_one(self, server, trace_id=None):
        from repro.serve import ServeClient

        matrix = COOMatrix.from_dense(DENSE)
        options = {"trace_id": trace_id} if trace_id else {}
        return ServeClient(server.address).convert(matrix, "CSR", **options)

    def test_tail_once_prints_request_rows(self, live_server, capsys):
        resp = self._convert_one(live_server, trace_id="tail-probe-1")
        assert resp["ok"]
        assert main(["tail", self._addr(live_server), "--once"]) == 0
        out = capsys.readouterr().out
        assert "tail-probe-1" in out
        assert "200" in out

    def test_trace_id_renders_the_remote_tree(self, live_server, capsys):
        trace_id = self._convert_one(live_server)["trace_id"]
        assert main(
            ["trace", "--id", trace_id, "--addr", self._addr(live_server)]
        ) == 0
        out = capsys.readouterr().out
        assert "serve.request" in out
        assert "execute" in out

    def test_trace_id_chrome_output_validates(self, live_server, capsys):
        import json

        from repro.obs import validate_chrome_trace

        trace_id = self._convert_one(live_server)["trace_id"]
        assert main(
            ["trace", "--id", trace_id, "--addr", self._addr(live_server),
             "--format", "chrome"]
        ) == 0
        assert validate_chrome_trace(
            json.loads(capsys.readouterr().out)
        ) == []

    def test_trace_unknown_id_fails_politely(self, live_server, capsys):
        assert main(
            ["trace", "--id", "never-recorded",
             "--addr", self._addr(live_server)]
        ) == 1
        assert "404" in capsys.readouterr().err

    def test_stats_scrapes_a_live_daemon(self, live_server, capsys):
        import json

        self._convert_one(live_server)
        assert main(
            ["stats", "--addr", self._addr(live_server),
             "--format", "json"]
        ) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert "prof" in snapshot and "metrics" in snapshot

    def test_stats_unreachable_daemon_is_an_error(self, capsys):
        assert main(
            ["stats", "--addr", "127.0.0.1:1", "--format", "json"]
        ) == 1
        assert "error" in capsys.readouterr().err
