"""The src/repro module-level import graph must stay acyclic.

The staged pipeline's layering (``repro.backends`` and ``repro.pipeline``
importable from every layer) only holds while no module-level cycle
exists; lazy imports inside functions are the sanctioned escape hatch and
are ignored by the checker.
"""

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))

from check_import_cycles import find_cycles, main  # noqa: E402


class TestRepoGraph:
    def test_no_module_level_cycles(self):
        cycles = find_cycles(REPO / "src" / "repro", REPO / "src")
        assert cycles == [], (
            "module-level import cycles (use a lazy import inside the "
            f"function that needs it): {cycles}"
        )

    def test_cli_reports_success(self, capsys):
        assert main([str(REPO / "src" / "repro")]) == 0
        assert "no module-level import cycles" in capsys.readouterr().out


class TestCheckerDetectsCycles:
    def make_cyclic_package(self, tmp_path):
        pkg = tmp_path / "src" / "cyclic"
        pkg.mkdir(parents=True)
        (pkg / "__init__.py").write_text("")
        (pkg / "a.py").write_text("from cyclic.b import beta\nalpha = 1\n")
        (pkg / "b.py").write_text("from cyclic.a import alpha\nbeta = 2\n")
        return pkg

    def test_direct_cycle_found(self, tmp_path):
        pkg = self.make_cyclic_package(tmp_path)
        cycles = find_cycles(pkg, pkg.parent)
        assert cycles == [["cyclic.a", "cyclic.b"]]

    def test_cli_exits_nonzero(self, tmp_path, capsys):
        pkg = self.make_cyclic_package(tmp_path)
        assert main([str(pkg)]) == 1
        assert "cycle" in capsys.readouterr().out

    def test_lazy_import_not_flagged(self, tmp_path):
        pkg = tmp_path / "src" / "lazy"
        pkg.mkdir(parents=True)
        (pkg / "__init__.py").write_text("")
        (pkg / "a.py").write_text(
            "def get():\n    from lazy.b import beta\n    return beta\n"
        )
        (pkg / "b.py").write_text("from lazy.a import get\nbeta = 2\n")
        assert find_cycles(pkg, pkg.parent) == []

    def test_missing_directory_is_an_error(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == 2
        assert "not a directory" in capsys.readouterr().err
