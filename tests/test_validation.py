"""Tests for the differential-testing harness."""

import random

import pytest

from repro.validation import (
    DifferentialReport,
    differential_test,
    random_matrix,
)


class TestRandomMatrix:
    def test_valid_and_sorted(self):
        rng = random.Random(0)
        for _ in range(20):
            m = random_matrix(rng)
            m.check()
            assert m.is_sorted_lexicographic()

    def test_degenerate_shapes_occur(self):
        rng = random.Random(1)
        shapes = {(random_matrix(rng).nrows, random_matrix(rng).ncols)
                  for _ in range(40)}
        assert any(1 in s for s in shapes)


class TestDifferentialTest:
    def test_clean_run(self):
        report = differential_test(trials=5, seed=3)
        assert report.ok
        assert report.conversions_checked > 5 * 5  # direct + chains
        assert "OK" in report.summary()

    def test_deterministic(self):
        a = differential_test(trials=3, seed=7)
        b = differential_test(trials=3, seed=7)
        assert a.conversions_checked == b.conversions_checked

    def test_no_chains(self):
        with_chains = differential_test(trials=3, seed=5)
        without = differential_test(trials=3, seed=5, chains=False)
        assert without.conversions_checked < with_chains.conversions_checked

    def test_custom_targets(self):
        report = differential_test(trials=2, seed=2, targets=("CSR",),
                                   chains=False)
        assert report.ok
        assert report.conversions_checked == 2


class TestReport:
    def test_failure_summary(self):
        report = DifferentialReport(trials=1, conversions_checked=1,
                                    failures=["x: dense image differs"])
        assert not report.ok
        assert "1 FAILURES" in report.summary()
        assert "dense image differs" in report.summary()


class TestCliSelftest:
    def test_exit_code_zero(self, capsys):
        from repro.__main__ import main

        assert main(["selftest", "--trials", "3"]) == 0
        assert "OK" in capsys.readouterr().out
