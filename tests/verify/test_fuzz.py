"""The differential fuzzer: determinism, coverage, and bug-detection power."""

import json

import pytest

from repro.runtime import COOMatrix, COOTensor3D
from repro.verify import FuzzReport, fuzz
from repro.verify.fuzz import (
    CASE_KINDS_2D,
    _run_case_2d,
    _shrink_dense,
    _shrink_tensor,
    fuzz as fuzz_fn,
)

import random


class TestGenerators:
    @pytest.mark.parametrize("kind,gen", CASE_KINDS_2D)
    def test_generators_produce_valid_dense(self, kind, gen):
        rng = random.Random(42)
        for _ in range(5):
            dense = gen(rng)
            assert dense and dense[0] is not None
            width = len(dense[0])
            assert all(len(row) == width for row in dense)


class TestFuzzRuns:
    def test_clean_smoke_run(self):
        report = fuzz(cases=12, seed=3, backends=("python",),
                      optimize_levels=(True,), ranks=(2,))
        assert report.ok, report.summary()
        assert report.cases_run == 12
        assert report.gate_probes > 0

    def test_3d_smoke_run(self):
        report = fuzz(cases=8, seed=5, backends=("python",),
                      optimize_levels=(True,), ranks=(3,))
        assert report.ok, report.summary()

    def test_deterministic_across_runs(self):
        a = fuzz(cases=10, seed=9, backends=("python",),
                 optimize_levels=(True,), ranks=(2,))
        b = fuzz(cases=10, seed=9, backends=("python",),
                 optimize_levels=(True,), ranks=(2,))
        assert a.to_dict() == b.to_dict()

    def test_report_is_json_serializable(self):
        report = fuzz(cases=4, seed=0, backends=("python",),
                      optimize_levels=(True,), ranks=(2,))
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["ok"] is True
        assert payload["cases_run"] == 4
        assert "combos_total" in payload

    def test_combo_coverage_accounting(self):
        report = fuzz(cases=300, seed=0, backends=("python",),
                      optimize_levels=(True,), ranks=(2,))
        assert report.combos_covered == report.combos_total
        assert "OK" in report.summary()


class TestBugDetectionPower:
    """Injected faults must be caught — the fuzzer is not vacuous."""

    def test_detects_sabotaged_baseline(self, monkeypatch):
        from repro.baselines import taco_style

        real = taco_style.coo_to_csr

        def sabotaged(coo):
            out = real(coo)
            if out.val:
                out.val[0] += 1.0
            return out

        monkeypatch.setattr(taco_style, "coo_to_csr", sabotaged)
        report = fuzz_fn(cases=60, seed=1, backends=("python",),
                         optimize_levels=(True,), ranks=(2,),
                         sources_2d=("SCOO",), dests_2d=("CSR",),
                         shrink=False)
        assert not report.ok
        assert any(f.stage == "baseline" for f in report.failures)

    def test_detects_broken_gate(self, monkeypatch):
        # If the gate stops raising on malformed input, probes must fail.
        from repro.verify import gate

        monkeypatch.setattr(gate, "check_input",
                            lambda *a, **k: None)
        report = fuzz_fn(cases=0, seed=0, backends=("python",),
                         optimize_levels=(True,), ranks=(2,),
                         sources_2d=("SCOO",), dests_2d=("CSR",))
        assert any(f.stage == "gate" for f in report.failures)

    def test_run_case_flags_dense_corruption(self, monkeypatch):
        import repro

        real = repro.convert

        def corrupting(container, dst, **kw):
            kw["validate"] = "off"  # escape the gate, like the old bug
            out = real(container, dst, **kw)
            if getattr(out, "val", None):
                out.val[0] += 5.0
            return out

        monkeypatch.setattr(repro, "convert", corrupting)
        dense = [[1.0, 0.0], [0.0, 2.0]]
        outcome = _run_case_2d(dense, "SCOO", "CSR", "python", True,
                               random.Random(0))
        assert outcome is not None
        stage, _ = outcome
        assert stage == "dense"


class TestShrinking:
    def test_shrinks_to_single_cell(self):
        dense = [[1.0, 2.0, 0.0], [0.0, 3.0, 4.0], [5.0, 0.0, 6.0]]

        def predicate(candidate):
            # "Fails" whenever the poison value survives anywhere.
            return any(v == 3.0 for row in candidate for v in row)

        small = _shrink_dense(dense, predicate)
        nnz = sum(1 for row in small for v in row if v != 0.0)
        assert nnz == 1
        assert any(v == 3.0 for row in small for v in row)

    def test_shrink_trims_dimensions(self):
        dense = [[7.0, 0.0, 0.0], [0.0, 0.0, 0.0], [0.0, 0.0, 0.0]]

        def predicate(candidate):
            return any(v == 7.0 for row in candidate for v in row)

        small = _shrink_dense(dense, predicate)
        assert len(small) == 1
        assert len(small[0]) == 1

    def test_shrink_tensor_drops_entries(self):
        tensor = COOTensor3D(
            (3, 3, 3), [0, 1, 2], [0, 1, 2], [0, 1, 2], [1.0, 9.0, 2.0]
        )

        def predicate(candidate):
            return 9.0 in candidate.val

        small = _shrink_tensor(tensor, predicate)
        assert small.nnz == 1
        assert small.val == [9.0]

    def test_shrink_keeps_failure_when_nothing_smaller_fails(self):
        dense = [[1.0]]
        small = _shrink_dense(dense, lambda c: c == [[1.0]])
        assert small == [[1.0]]


class TestReportRendering:
    def test_summary_mentions_skipped_pairs(self):
        report = FuzzReport(seed=0, cases_requested=0)
        report.skipped_pairs.append("DIA->BCSR")
        report.combos_total = 4
        assert "DIA->BCSR" in report.summary()

    def test_cli_entry(self, capsys):
        from repro.__main__ import main

        status = main([
            "fuzz", "--cases", "6", "--seed", "2", "--backend", "python",
            "--optimize", "on", "--rank", "2",
        ])
        out = capsys.readouterr().out
        assert status == 0
        assert "OK" in out

    def test_cli_report_file(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "report.json"
        status = main([
            "fuzz", "--cases", "4", "--seed", "2", "--backend", "python",
            "--optimize", "on", "--rank", "2", "--report", str(path),
        ])
        assert status == 0
        payload = json.loads(path.read_text())
        assert payload["ok"] is True


class TestRandomFormats:
    """Differential fuzzing of randomly generated level compositions."""

    def test_clean_smoke_run(self):
        from repro.verify import fuzz_random_formats

        report = fuzz_random_formats(
            6, seed=1, backends=("python",), optimize_levels=(True,)
        )
        assert report.ok, report.summary()
        assert report.cases_run == 6
        assert report.conversions_checked >= 6

    def test_deterministic_across_runs(self):
        from repro.verify import fuzz_random_formats

        first = fuzz_random_formats(
            4, seed=9, backends=("python",), optimize_levels=(True,)
        )
        second = fuzz_random_formats(
            4, seed=9, backends=("python",), optimize_levels=(True,)
        )
        assert first.to_dict() == second.to_dict()

    def test_dest_capable_compositions_fuzz_both_directions(self):
        from repro.verify import fuzz_random_formats

        report = fuzz_random_formats(
            10, seed=1, backends=("python",), optimize_levels=(True,)
        )
        # With 10 compositions some must be dest-capable, so more
        # conversions than one per case are checked.
        assert report.conversions_checked > report.cases_run

    def test_detects_broken_interpretation(self, monkeypatch):
        """The oracle actually has teeth: corrupt outputs get flagged."""
        import importlib

        fuzz_mod = importlib.import_module("repro.verify.fuzz")

        original = fuzz_mod._env_from_outputs

        def corrupted(conversion, outputs, src_env):
            env = original(conversion, outputs, src_env)
            if env.get("Asrc"):
                env["Asrc"] = list(env["Asrc"])
                env["Asrc"][0] += 1.0
            return env

        monkeypatch.setattr(fuzz_mod, "_env_from_outputs", corrupted)
        report = fuzz_mod.fuzz_random_formats(
            6, seed=1, backends=("python",), optimize_levels=(True,)
        )
        assert not report.ok
        assert any(f.stage == "dense" for f in report.failures)

    def test_cli_random_formats(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "levels-report.json"
        status = main([
            "fuzz", "--random-formats", "--cases", "4", "--seed", "2",
            "--backend", "python", "--optimize", "on",
            "--report", str(path),
        ])
        out = capsys.readouterr().out
        assert status == 0
        assert "OK" in out
        payload = json.loads(path.read_text())
        assert payload["ok"] is True
        assert payload["cases_run"] == 4
