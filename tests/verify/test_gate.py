"""The runtime validation gate: malformed inputs must raise, not corrupt.

Regression tests for the silent-corruption issue: duplicate-coordinate
and out-of-bounds COO previously flowed straight into synthesized
inspectors (yielding corrupt CSR or a bare IndexError), and unsorted COO
silently fell back to the sorting descriptor even when the caller had
promised sorted input.
"""

import pytest

from repro import (
    BoundsError,
    COOMatrix,
    DuplicateCoordinateError,
    UnsortedInputError,
    ValidationError,
    convert,
    dense_equal,
)
from repro.planner import convert_via_plan
from repro.runtime import COOTensor3D
from repro.verify import check_input, check_output, normalize_level

BACKENDS = ("python", "numpy")


class TestLevels:
    def test_normalize(self):
        assert normalize_level(None) == "off"
        assert normalize_level(False) == "off"
        assert normalize_level("inputs") == "inputs"
        assert normalize_level("full") == "full"

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="validate must be one of"):
            normalize_level("paranoid")
        with pytest.raises(ValueError):
            convert(COOMatrix(1, 1, [0], [0], [1.0]), "CSR",
                    validate="everything")


@pytest.mark.parametrize("backend", BACKENDS)
class TestIssueRepros:
    """The three malformed-input families from the issue report."""

    def test_duplicate_coordinates_raise_naming_coordinate(self, backend):
        dup = COOMatrix(3, 3, [0, 0, 1], [1, 1, 2], [1.0, 2.0, 3.0])
        with pytest.raises(DuplicateCoordinateError) as exc:
            convert(dup, "CSR", backend=backend)
        assert "(0, 1)" in str(exc.value)
        assert exc.value.coordinate == (0, 1)
        assert exc.value.positions == (0, 1)

    def test_out_of_bounds_raises_naming_coordinate(self, backend):
        oob = COOMatrix(2, 2, [0, 5], [0, 1], [1.0, 2.0])
        with pytest.raises(BoundsError) as exc:
            convert(oob, "CSR", backend=backend)
        assert "(5, 1)" in str(exc.value)
        assert exc.value.coordinate == (5, 1)

    def test_negative_column_raises(self, backend):
        oob = COOMatrix(2, 2, [0, 1], [0, -3], [1.0, 2.0])
        with pytest.raises(BoundsError):
            convert(oob, "CSC", backend=backend)

    def test_unsorted_with_assume_sorted_raises_with_remedy(self, backend):
        uns = COOMatrix(3, 3, [2, 0, 1], [0, 2, 1], [1.0, 2.0, 3.0])
        with pytest.raises(UnsortedInputError) as exc:
            convert(uns, "CSR", backend=backend)
        message = str(exc.value)
        assert "assume_sorted=False" in message
        assert exc.value.position == 1

    def test_remedy_converts_correctly(self, backend):
        uns = COOMatrix(3, 3, [2, 0, 1], [0, 2, 1], [1.0, 2.0, 3.0])
        out = convert(uns, "CSR", backend=backend, assume_sorted=False)
        out.check()
        assert dense_equal(out.to_dense(), uns.to_dense())

    def test_validate_off_preserves_legacy_fallback(self, backend):
        uns = COOMatrix(3, 3, [2, 0, 1], [0, 2, 1], [1.0, 2.0, 3.0])
        out = convert(uns, "CSR", backend=backend, validate="off")
        assert dense_equal(out.to_dense(), uns.to_dense())


class TestGateFunctions:
    def test_check_input_off_is_noop(self):
        dup = COOMatrix(3, 3, [0, 0], [1, 1], [1.0, 2.0])
        check_input(dup, level="off")  # must not raise

    def test_check_input_catches_duplicates(self):
        dup = COOMatrix(3, 3, [0, 0], [1, 1], [1.0, 2.0])
        with pytest.raises(DuplicateCoordinateError):
            check_input(dup, level="inputs")

    def test_unsorted_allowed_when_not_assumed(self):
        uns = COOMatrix(3, 3, [2, 0], [0, 2], [1.0, 2.0])
        check_input(uns, level="inputs", assume_sorted=False)

    def test_check_output_full_catches_dense_mismatch(self):
        src = COOMatrix(2, 2, [0, 1], [0, 1], [1.0, 2.0])
        wrong = COOMatrix(2, 2, [0, 1], [0, 1], [1.0, 9.0])
        with pytest.raises(ValidationError):
            check_output(wrong, src, level="full")
        check_output(wrong, src, level="inputs")  # not checked below full

    def test_validation_error_is_value_error(self):
        assert issubclass(ValidationError, ValueError)
        assert issubclass(UnsortedInputError, ValidationError)


class TestPlannerGate:
    def test_plan_path_rejects_unsorted(self):
        uns = COOMatrix(3, 3, [2, 0, 1], [0, 2, 1], [1.0, 2.0, 3.0])
        with pytest.raises(UnsortedInputError):
            convert_via_plan(uns, "DIA")

    def test_plan_path_full_validation(self):
        uns = COOMatrix(3, 3, [2, 0, 1], [0, 2, 1], [1.0, 2.0, 3.0])
        out = convert_via_plan(uns, "DIA", assume_sorted=False,
                               validate="full")
        assert dense_equal(out.to_dense(), uns.to_dense())

    def test_plan_path_rejects_duplicates(self):
        dup = COOMatrix(3, 3, [0, 0, 1], [1, 1, 2], [1.0, 2.0, 3.0])
        with pytest.raises(DuplicateCoordinateError):
            convert_via_plan(dup, "CSR")


class TestTensorGate:
    def test_unsorted_tensor_raises(self):
        t = COOTensor3D((2, 2, 2), [1, 0], [0, 0], [0, 0], [1.0, 2.0])
        with pytest.raises(UnsortedInputError):
            convert(t, "MCOO3")

    def test_duplicate_tensor_coordinate_raises(self):
        t = COOTensor3D((2, 2, 2), [0, 0], [1, 1], [1, 1], [1.0, 2.0])
        with pytest.raises(DuplicateCoordinateError) as exc:
            convert(t, "MCOO3")
        assert exc.value.coordinate == (0, 1, 1)

    def test_out_of_bounds_tensor_raises(self):
        t = COOTensor3D((2, 2, 2), [0, 3], [0, 0], [0, 0], [1.0, 2.0])
        with pytest.raises(BoundsError):
            convert(t, "MCOO3")

    def test_unsorted_tensor_remedy(self):
        t = COOTensor3D((2, 2, 2), [1, 0], [0, 0], [0, 0], [1.0, 2.0])
        out = convert(t, "MCOO3", assume_sorted=False)
        assert out.to_dict() == t.to_dict()


class TestFullGateOnGoodInputs:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("dst", ["CSR", "CSC", "DIA", "MCOO", "BCSR"])
    def test_full_validation_accepts_correct_output(self, backend, dst):
        dense = [
            [1.0, 0.0, 2.0, 0.0],
            [0.0, 0.0, 0.0, 0.0],
            [3.0, 4.0, 0.0, 5.0],
            [0.0, 6.0, 0.0, 7.0],
        ]
        coo = COOMatrix.from_dense(dense)
        out = convert(coo, dst, backend=backend, validate="full")
        assert dense_equal(out.to_dense(), dense)
