#!/usr/bin/env python
"""Fail when ``src/repro`` has a module-level import cycle.

The layering rule the staged pipeline depends on — ``repro.backends`` and
``repro.pipeline`` importable from anywhere — only holds while the
*module-level* import graph stays acyclic.  Imports inside functions are
the sanctioned escape hatch for runtime dependencies (a backend's
``namespace()`` pulling in the executor) and are deliberately ignored
here.

Stdlib-only on purpose: this runs in CI next to ruff but needs nothing
installed, so it also works as a plain pre-commit hook.

Usage: ``python tools/check_import_cycles.py [ROOT]`` (default
``src/repro``).  Exits 1 and prints every strongly-connected component
with more than one module (or a self-import).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path


def module_name(path: Path, src_root: Path) -> str:
    """``src/repro/spf/codegen.py`` -> ``repro.spf.codegen``."""
    rel = path.relative_to(src_root).with_suffix("")
    parts = list(rel.parts)
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def resolve_relative(importer: str, is_package: bool, node: ast.ImportFrom):
    """The absolute module an ``ast.ImportFrom`` targets, or None."""
    if node.level == 0:
        return node.module
    # Level 1 from a package (__init__) means the package itself;
    # from a plain module it means the parent package.
    anchor = importer.split(".")
    if not is_package:
        anchor = anchor[:-1]
    drop = node.level - 1
    if drop >= len(anchor):
        return None
    if drop:
        anchor = anchor[:-drop]
    return ".".join(anchor + ([node.module] if node.module else []))


def module_level_imports(tree: ast.Module, importer: str, is_package: bool):
    """Imported module names reachable without calling anything.

    Walks module-level statements plus ``if``/``try`` bodies while
    skipping function and class bodies, and ``if TYPE_CHECKING`` blocks
    (those import nothing at runtime).
    """
    stack = list(tree.body)
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield alias.name
        elif isinstance(node, ast.ImportFrom):
            target = resolve_relative(importer, is_package, node)
            if target:
                yield target
                # ``from pkg import sub`` may bind the submodule, which
                # executes it: count both edges.
                for alias in node.names:
                    yield f"{target}.{alias.name}"
        elif isinstance(node, (ast.If, ast.Try, ast.With)):
            if isinstance(node, ast.If) and _is_type_checking(node.test):
                stack.extend(node.orelse)
                continue
            for field in ("body", "orelse", "finalbody", "handlers"):
                for child in getattr(node, field, []):
                    stack.extend(
                        child.body
                        if isinstance(child, ast.ExceptHandler)
                        else [child]
                    )


def _is_type_checking(test: ast.expr) -> bool:
    return (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING") or (
        isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"
    )


def build_graph(root: Path, src_root: Path) -> dict[str, set[str]]:
    modules: dict[str, Path] = {}
    for path in sorted(root.rglob("*.py")):
        modules[module_name(path, src_root)] = path
    graph: dict[str, set[str]] = {name: set() for name in modules}
    for name, path in modules.items():
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        is_package = path.name == "__init__.py"
        for target in module_level_imports(tree, name, is_package):
            # Collapse to the longest known prefix (importing a submodule
            # executes its ancestors), stopping at the importer itself so
            # a self-referencing bind never walks up to the parent.
            candidate = target
            while candidate:
                if candidate == name:
                    break
                if candidate in graph:
                    # A submodule importing from its own ancestor package
                    # is the sanctioned partially-initialized-package
                    # pattern, not a layering violation.
                    if not name.startswith(candidate + "."):
                        graph[name].add(candidate)
                    break
                candidate = candidate.rpartition(".")[0]
    return graph


def strongly_connected(graph: dict[str, set[str]]) -> list[list[str]]:
    """Tarjan's algorithm, iterative (the graph is small but deep)."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = 0

    for start in graph:
        if start in index:
            continue
        work = [(start, iter(sorted(graph[start])))]
        index[start] = lowlink[start] = counter
        counter += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, edges = work[-1]
            advanced = False
            for nxt in edges:
                if nxt not in index:
                    index[nxt] = lowlink[nxt] = counter
                    counter += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(sorted(graph[nxt]))))
                    advanced = True
                    break
                if nxt in on_stack:
                    lowlink[node] = min(lowlink[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(sorted(component))
    return sccs


def find_cycles(root: Path, src_root: Path) -> list[list[str]]:
    graph = build_graph(root, src_root)
    return [
        scc
        for scc in strongly_connected(graph)
        if len(scc) > 1
        or (len(scc) == 1 and scc[0] in graph[scc[0]])
    ]


def main(argv: list[str] | None = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    root = Path(args[0]) if args else Path("src/repro")
    if not root.is_dir():
        print(f"error: {root} is not a directory", file=sys.stderr)
        return 2
    # A package root's module names are anchored at its parent; a bare
    # source tree (no __init__.py) is its own anchor.
    src_root = root.parent if (root / "__init__.py").exists() else root
    cycles = find_cycles(root, src_root)
    if cycles:
        print("module-level import cycle(s) found:")
        for scc in cycles:
            print("  " + " <-> ".join(scc))
        return 1
    count = len(build_graph(root, src_root))
    print(f"no module-level import cycles across {count} modules")
    return 0


if __name__ == "__main__":
    sys.exit(main())
